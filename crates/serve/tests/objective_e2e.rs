//! Objective end-to-end tests over real sockets.
//!
//! The load-bearing assertions are the compatibility ones: a store
//! directory written before the objective refactor (simulated by
//! rewriting the store header to version 1 — QoM payloads are
//! byte-identical across versions) must keep serving disk hits, and a
//! request that omits `objective` must share every cache entry — response
//! cache, artifact cache, disk store — with one that spells `qom`
//! explicitly, byte for byte. Age objectives ride the same pipeline with
//! their own keys and show up in `/metrics` and `/debug/recent`.

use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::time::Duration;

use evcap_obs::{parse_line, JsonValue};
use evcap_serve::client::{self, Conn};
use evcap_serve::{prometheus, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config(store: Option<&std::path::Path>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        cache_cap: 64,
        shards: 4,
        read_timeout: Duration::from_millis(500),
        coalesce_timeout: Duration::from_secs(20),
        max_slots: 500_000,
        store: store.map(|d| d.display().to_string()),
        ..ServeConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("evcap-objective-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn metric(server: &Server, name: &str) -> f64 {
    let resp = client::get(server.local_addr(), "/metrics", TIMEOUT).expect("GET /metrics");
    assert_eq!(resp.status, 200);
    let v = parse_line(&resp.text()).expect("metrics body parses");
    v.get(name)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("metrics has no `{name}`: {}", resp.text()))
}

/// Rewrites the store header's version word to 1, turning the directory
/// into a faithful stand-in for one written before the objective refactor
/// (QoM record payloads are byte-identical between versions 1 and 2).
fn downgrade_store_header(dir: &std::path::Path) {
    let path = dir.join(evcap_store::STORE_FILE);
    let mut file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open store file");
    file.seek(SeekFrom::Start(4)).unwrap();
    file.write_all(&1u32.to_le_bytes()).unwrap();
    file.sync_data().unwrap();
}

#[test]
fn pre_objective_store_and_cache_keys_survive_the_refactor() {
    let dir = scratch_dir("v1");

    // Phase A — populate a store the pre-refactor way: no `objective`
    // field anywhere, then stamp the file as version 1.
    let body = br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","horizon":4096}"#;
    let server = Server::start(test_config(Some(&dir))).expect("bind");
    let mut conn = Conn::connect(server.local_addr(), TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/solve", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(metric(&server, "store_appends"), 1.0);
    let reference = first.body.clone();
    drop(conn);
    server.shutdown();
    downgrade_store_header(&dir);

    // Phase B — a post-refactor server against the v1 directory: the
    // request with `objective` omitted loads the stored record (a disk
    // hit, not a reject), and the explicit-`qom` spelling lands on the
    // very same response-cache entry.
    let server = Server::start(test_config(Some(&dir))).expect("bind");
    let mut conn = Conn::connect(server.local_addr(), TIMEOUT).unwrap();
    let omitted = conn.request("POST", "/v1/solve", body).unwrap();
    assert_eq!(omitted.status, 200, "{}", omitted.text());
    assert_eq!(omitted.cache.as_deref(), Some("miss"), "hot tier is empty");
    assert_eq!(metric(&server, "store_hits"), 1.0);
    assert_eq!(metric(&server, "store_rejects"), 0.0);
    assert_eq!(
        omitted.body, reference,
        "a version-1 record replays the pre-refactor bytes"
    );

    let explicit = br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","horizon":4096,"objective":"qom"}"#;
    let second = conn.request("POST", "/v1/solve", explicit).unwrap();
    assert_eq!(second.cache.as_deref(), Some("hit"), "same cache key");
    assert_eq!(second.body, reference);

    // Same equivalence on `/v1/simulate`.
    let sim_omitted =
        br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","slots":5000,"seed":7,"horizon":4096}"#;
    let sim_explicit = br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","slots":5000,"seed":7,"horizon":4096,"objective":"qom"}"#;
    let first = conn.request("POST", "/v1/simulate", sim_omitted).unwrap();
    let second = conn.request("POST", "/v1/simulate", sim_explicit).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);
    assert!(
        !first.text().contains("\"objective\""),
        "default bodies stay objective-free"
    );

    drop(conn);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn age_objective_artifacts_round_trip_the_store() {
    let dir = scratch_dir("aoi");
    let body = br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","objective":"aoi-mean","horizon":4096}"#;

    let server = Server::start(test_config(Some(&dir))).expect("bind");
    let mut conn = Conn::connect(server.local_addr(), TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/solve", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(metric(&server, "store_appends"), 1.0);
    let v = parse_line(&first.text()).unwrap();
    assert_eq!(
        v.get("objective").and_then(JsonValue::as_str),
        Some("aoi-mean")
    );
    assert!(v
        .get("objective_value")
        .and_then(JsonValue::as_f64)
        .is_some_and(f64::is_finite));
    let reference = first.body.clone();
    drop(conn);
    server.shutdown();

    // Warm restart: the age-objective record loads from disk, passes
    // certification, and replays byte-identically.
    let server = Server::start(test_config(Some(&dir))).expect("bind");
    let mut conn = Conn::connect(server.local_addr(), TIMEOUT).unwrap();
    let warm = conn.request("POST", "/v1/solve", body).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.text());
    assert_eq!(metric(&server, "store_hits"), 1.0);
    assert_eq!(metric(&server, "store_rejects"), 0.0);
    assert_eq!(warm.body, reference);
    drop(conn);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_objective_traffic_is_distinguishable_end_to_end() {
    let server = Server::start(test_config(None)).expect("bind");
    let addr = server.local_addr();
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();

    // Same physics, three objectives: three distinct cache entries.
    let qom = br#"{"dist":"det:11","e":0.3,"horizon":1024}"#;
    let mean = br#"{"dist":"det:11","e":0.3,"horizon":1024,"objective":"aoi-mean"}"#;
    let peak = br#"{"dist":"det:11","e":0.3,"horizon":1024,"objective":"aoi-peak"}"#;
    for body in [&qom[..], mean, peak] {
        let resp = conn.request("POST", "/v1/solve", body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(resp.cache.as_deref(), Some("miss"));
    }
    assert_eq!(metric(&server, "solve_cache_misses"), 3.0);
    assert_eq!(metric(&server, "objective_requests_qom"), 1.0);
    assert_eq!(metric(&server, "objective_requests_aoi_mean"), 1.0);
    assert_eq!(metric(&server, "objective_requests_aoi_peak"), 1.0);

    // The Prometheus exposition carries the same labelled counters.
    let scrape = conn
        .request("GET", "/metrics?format=prometheus", b"")
        .unwrap();
    let samples = prometheus::parse(&scrape.text()).expect("scrape parses");
    for objective in ["qom", "aoi-mean", "aoi-peak"] {
        assert_eq!(
            prometheus::find(
                &samples,
                "evcap_objective_requests_total",
                &[("objective", objective)]
            ),
            Some(1.0),
            "{objective}"
        );
    }

    // The flight recorder tags each summary with its objective; routes
    // without a scenario stay `none`.
    let resp = conn.request("GET", "/debug/recent", b"").unwrap();
    let v = parse_line(&resp.text()).expect("recent body parses");
    let requests = v.get("requests").and_then(JsonValue::as_array).unwrap();
    let objectives: Vec<&str> = requests
        .iter()
        .filter_map(|r| r.get("objective").and_then(JsonValue::as_str))
        .collect();
    assert_eq!(objectives.len(), requests.len(), "{}", resp.text());
    assert_eq!(&objectives[..3], ["qom", "aoi-mean", "aoi-peak"]);
    assert!(
        objectives[3..].iter().all(|o| *o == "none"),
        "scenario-free routes stay untagged: {objectives:?}"
    );
    server.shutdown();
}
