//! End-to-end tests: a real server on an ephemeral port, exercised over
//! real sockets with the crate's own client.
//!
//! The load-bearing assertions are the caching ones: a second identical
//! solve must be a *hit* (no second optimizer timing span), and N
//! concurrent identical solves must collapse to exactly one compute
//! (`solve_cache_misses == 1` on `/metrics`, regardless of thread
//! interleaving).

use std::sync::{Arc, Barrier};
use std::time::Duration;

use evcap_obs::{parse_line, JsonValue};
use evcap_serve::client::{self, Conn};
use evcap_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        cache_cap: 64,
        shards: 4,
        read_timeout: Duration::from_millis(500),
        coalesce_timeout: Duration::from_secs(20),
        max_slots: 500_000,
        ..ServeConfig::default()
    }
}

fn metric(server: &Server, name: &str) -> f64 {
    let resp = client::get(server.local_addr(), "/metrics", TIMEOUT).expect("GET /metrics");
    assert_eq!(resp.status, 200);
    let v = parse_line(&resp.text()).expect("metrics body parses");
    v.get(name)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("metrics has no `{name}`: {}", resp.text()))
}

#[test]
fn health_metrics_and_routing() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    let resp = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let v = parse_line(&resp.text()).expect("health body parses");
    assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"));

    let resp = client::get(addr, "/nope", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);
    let v = parse_line(&resp.text()).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("not_found"));

    // Wrong method on a real route.
    let resp = client::get(addr, "/v1/solve", TIMEOUT).unwrap();
    assert_eq!(resp.status, 405);

    // The metrics endpoint counts what just happened and parses as JSON.
    assert!(metric(&server, "requests") >= 3.0);
    assert_eq!(metric(&server, "responses_4xx"), 2.0);

    server.shutdown();
}

#[test]
fn second_identical_solve_is_a_cache_hit_with_no_second_optimizer_span() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    // The timing registry is process-global; only this test solves with the
    // clustering optimizer, so the `clustering.search` span count below is
    // attributable to these two requests alone.
    evcap_obs::timing::set_enabled(true);
    evcap_obs::timing::reset();

    // Two spellings of the same scenario: alias + trailing-zero float.
    let body_a = br#"{"dist":"weibull:40.0,3","e":0.2,"policy":"clustering","horizon":4096}"#;
    let body_b = br#"{"dist":"weibull:40,3.00","e":0.2,"policy":"clustering","horizon":4096}"#;
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/solve", body_a).unwrap();
    let second = conn.request("POST", "/v1/solve", body_b).unwrap();
    evcap_obs::timing::set_enabled(false);

    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(second.cache.as_deref(), Some("hit"));
    // Hit and miss replay byte-identical bodies.
    assert_eq!(first.body, second.body);

    // Exactly one optimizer run: the second request never touched the
    // clustering search.
    let spans = evcap_obs::timing::drain_spans();
    let search = spans
        .iter()
        .find(|(name, _)| *name == "clustering.search")
        .expect("the miss ran the optimizer under an enabled registry");
    assert_eq!(search.1.count, 1, "second solve must not re-optimize");

    assert_eq!(metric(&server, "solve_cache_hits"), 1.0);
    assert_eq!(metric(&server, "solve_cache_misses"), 1.0);
    server.shutdown();
}

#[test]
fn concurrent_identical_solves_collapse_to_one_compute() {
    let clients = 4usize;
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(clients));
    let body = br#"{"dist":"erlang:4,0.2","e":0.15,"horizon":8192}"#;
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut conn = Conn::connect(addr, TIMEOUT).expect("connect");
                    barrier.wait();
                    let resp = conn.request("POST", "/v1/solve", body).expect("solve");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    resp.body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // All four clients got the same answer, from exactly one computation:
    // one miss (the leader); everyone else either coalesced onto the
    // in-flight solve or hit the fresh cache entry.
    for b in &bodies[1..] {
        assert_eq!(*b, bodies[0]);
    }
    // One metrics snapshot (the GET itself would inflate later reads).
    let resp = client::get(addr, "/metrics", TIMEOUT).unwrap();
    let m = parse_line(&resp.text()).unwrap();
    let f = |k: &str| m.get(k).and_then(JsonValue::as_f64).unwrap();
    assert_eq!(f("solve_cache_misses"), 1.0);
    assert_eq!(
        f("solve_cache_hits") + f("solve_cache_coalesced"),
        (clients - 1) as f64
    );
    assert_eq!(f("solve_requests"), clients as f64);
    assert_eq!(f("responses_2xx"), clients as f64);
    server.shutdown();
}

#[test]
fn simulate_is_deterministic_and_cached() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    let body = br#"{"dist":"det:7","e":0.3,"slots":20000,"seed":42,"horizon":1024}"#;
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/simulate", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    let v = parse_line(&first.text()).unwrap();
    assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("simulate"));
    assert_eq!(v.get("slots").and_then(JsonValue::as_f64), Some(20_000.0));
    assert_eq!(v.get("seed").and_then(JsonValue::as_f64), Some(42.0));
    let qom = v.get("qom").and_then(JsonValue::as_f64).expect("qom");
    assert!(qom > 0.0 && qom <= 1.0, "qom = {qom}");

    let second = conn.request("POST", "/v1/simulate", body).unwrap();
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);
    assert_eq!(metric(&server, "sim_cache_hits"), 1.0);

    // Over-budget slot counts are refused up front.
    let resp = client::post(
        addr,
        "/v1/simulate",
        br#"{"dist":"det:7","e":0.3,"slots":900000}"#,
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    server.shutdown();
}

#[test]
fn batched_simulate_is_cached_and_bounds_checked() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    let body =
        br#"{"dist":"det:7","e":0.3,"slots":10000,"seed":42,"horizon":1024,"replications":6}"#;
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/simulate", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.cache.as_deref(), Some("miss"));
    let v = parse_line(&first.text()).unwrap();
    assert_eq!(v.get("replications").and_then(JsonValue::as_f64), Some(6.0));
    assert_eq!(
        v.get("qom_per_seed")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::len),
        Some(6)
    );

    // The identical batched request replays the cached bytes.
    let second = conn.request("POST", "/v1/simulate", body).unwrap();
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);

    // Same scenario, different replication count: a distinct cache entry.
    let other =
        br#"{"dist":"det:7","e":0.3,"slots":10000,"seed":42,"horizon":1024,"replications":5}"#;
    let third = conn.request("POST", "/v1/simulate", other).unwrap();
    assert_eq!(third.cache.as_deref(), Some("miss"));

    // Zero and absurd replication counts are structured 400s.
    for bad in [
        &br#"{"dist":"det:7","e":0.3,"slots":10000,"replications":0}"#[..],
        br#"{"dist":"det:7","e":0.3,"slots":10000,"replications":1000000}"#,
        br#"{"dist":"det:7","e":0.3,"slots":400000,"replications":4}"#,
    ] {
        let resp = client::post(addr, "/v1/simulate", bad, TIMEOUT).unwrap();
        assert_eq!(resp.status, 400, "{}", resp.text());
        let v = parse_line(&resp.text()).unwrap();
        assert_eq!(
            v.get("kind").and_then(JsonValue::as_str),
            Some("invalid_field"),
            "{}",
            resp.text()
        );
    }
    server.shutdown();
}

#[test]
fn spelling_variants_share_one_cache_entry_on_both_endpoints() {
    // Regression: the cache key must be built from the *canonical* dist and
    // recharge spellings, so `exp:0.050` and `exponential:0.05` (an alias
    // plus a trailing-zero float) land on the same entry — on `/v1/solve`
    // and `/v1/simulate` alike.
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();

    let solve_a = br#"{"dist":"exp:0.050","e":0.2,"horizon":2048}"#;
    let solve_b = br#"{"dist":"exponential:0.05","e":0.2,"horizon":2048}"#;
    let first = conn.request("POST", "/v1/solve", solve_a).unwrap();
    let second = conn.request("POST", "/v1/solve", solve_b).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);

    let sim_a = br#"{"dist":"exp:0.050","e":0.2,"recharge":"bernoulli:0.50,0.40","slots":5000,"seed":7,"horizon":2048}"#;
    let sim_b = br#"{"dist":"exponential:0.05","e":0.2,"recharge":"bernoulli:0.5,0.4","slots":5000,"seed":7,"horizon":2048}"#;
    let first = conn.request("POST", "/v1/simulate", sim_a).unwrap();
    let second = conn.request("POST", "/v1/simulate", sim_b).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);

    assert_eq!(metric(&server, "solve_cache_misses"), 1.0);
    assert_eq!(metric(&server, "solve_cache_hits"), 1.0);
    assert_eq!(metric(&server, "sim_cache_misses"), 1.0);
    assert_eq!(metric(&server, "sim_cache_hits"), 1.0);
    server.shutdown();
}

#[test]
fn bad_requests_get_structured_errors_over_the_wire() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    // NaN inside a spec string: the shared spec module rejects it and the
    // server translates that into a structured 400 (satellite fix).
    let resp = client::post(
        addr,
        "/v1/solve",
        br#"{"dist":"weibull:nan,3","e":0.2}"#,
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    let v = parse_line(&resp.text()).expect("error body parses");
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("invalid_spec")
    );
    assert!(
        v.get("message")
            .and_then(JsonValue::as_str)
            .is_some_and(|m| m.contains("not finite")),
        "{}",
        resp.text()
    );

    // Malformed JSON.
    let resp = client::post(addr, "/v1/solve", b"{not json", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);

    // None of those polluted the cache.
    assert_eq!(metric(&server, "solve_cache_misses"), 0.0);
    server.shutdown();
}

#[test]
fn oversized_bodies_are_refused_at_the_framing_layer() {
    // A small body budget, and a body that still fits comfortably in the
    // socket send buffer so the client finishes writing before the server
    // answers 413 and closes.
    let mut config = test_config();
    config.limits.max_body = 1024;
    let server = Server::start(config).expect("bind");
    let addr = server.local_addr();

    let big = vec![b'x'; 4 * 1024];
    let resp = client::post(addr, "/v1/solve", &big, TIMEOUT).unwrap();
    assert_eq!(resp.status, 413);
    assert!(!resp.keep_alive);
    server.shutdown();
}

#[test]
fn prometheus_exposition_round_trips_and_matches_json() {
    use evcap_serve::prometheus;

    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();

    // One miss + one hit so the cache series and latency histogram are
    // populated.
    let body = br#"{"dist":"det:9","e":0.25,"horizon":2048}"#;
    assert_eq!(conn.request("POST", "/v1/solve", body).unwrap().status, 200);
    let hit = conn.request("POST", "/v1/solve", body).unwrap();
    assert_eq!(hit.cache.as_deref(), Some("hit"));

    // JSON stays the default; Prometheus comes via `?format=` or `Accept`.
    let json = conn.request("GET", "/metrics", b"").unwrap();
    assert_eq!(json.content_type.as_deref(), Some("application/json"));
    let m = parse_line(&json.text()).unwrap();
    let json_requests = m.get("requests").and_then(JsonValue::as_f64).unwrap();

    let scrape = conn
        .request("GET", "/metrics?format=prometheus", b"")
        .unwrap();
    assert_eq!(scrape.status, 200);
    assert_eq!(
        scrape.content_type.as_deref(),
        Some(prometheus::CONTENT_TYPE)
    );
    let samples = prometheus::parse(&scrape.text()).expect("scrape parses");

    // Request counters are present and consistent with the JSON body
    // (the scrape itself is one more request than the JSON snapshot saw).
    let requests = prometheus::find(&samples, "evcap_requests_total", &[]).unwrap();
    assert_eq!(requests, json_requests + 1.0);
    assert_eq!(
        prometheus::find(
            &samples,
            "evcap_endpoint_requests_total",
            &[("endpoint", "solve")]
        ),
        Some(2.0)
    );

    // Both cache tiers expose per-shard series; the solve tier's hit
    // counters sum to the one hit above, and every shard reports capacity.
    for cache in ["solve", "sim"] {
        let mut hits = 0.0;
        for shard in 0..4 {
            let labels = [("cache", cache), ("shard", &shard.to_string())];
            hits += prometheus::find(&samples, "evcap_cache_hits_total", &labels[..])
                .unwrap_or_else(|| panic!("missing hits for {cache}/{shard}"));
            assert!(prometheus::find(&samples, "evcap_cache_capacity", &labels[..]).unwrap() > 0.0);
        }
        assert_eq!(hits, if cache == "solve" { 1.0 } else { 0.0 });
    }

    // Histogram buckets are cumulative and terminate at `+Inf` == `_count`.
    let buckets: Vec<&prometheus::Sample> = samples
        .iter()
        .filter(|s| s.name == "evcap_request_latency_seconds_bucket")
        .collect();
    assert!(buckets.len() >= 2);
    assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
    assert_eq!(buckets.last().and_then(|s| s.label("le")), Some("+Inf"));
    let count = prometheus::find(&samples, "evcap_request_latency_seconds_count", &[]).unwrap();
    assert_eq!(buckets.last().map(|s| s.value), Some(count));

    // Accept-header negotiation picks the text format too.
    let via_accept = conn
        .request_with("GET", "/metrics", b"", &[("accept", "text/plain")])
        .unwrap();
    assert_eq!(
        via_accept.content_type.as_deref(),
        Some(prometheus::CONTENT_TYPE)
    );
    assert!(prometheus::parse(&via_accept.text()).is_ok());

    server.shutdown();
}

#[test]
fn trace_tree_in_the_access_log_is_single_rooted() {
    let log = std::env::temp_dir().join("evcap_e2e_trace_tree.jsonl");
    let _ = std::fs::remove_file(&log);
    let mut config = test_config();
    config.access_log = Some(log.display().to_string());
    let server = Server::start(config).expect("bind");
    let addr = server.local_addr();

    // A cache-miss solve with a caller-chosen request id: the clustering
    // optimizer runs, so the tree must contain its span.
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();
    let body = br#"{"dist":"weibull:30,2","e":0.2,"policy":"clustering","horizon":4096}"#;
    let resp = conn
        .request_with(
            "POST",
            "/v1/solve",
            body,
            &[("x-request-id", "e2e-trace-01")],
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.cache.as_deref(), Some("miss"));
    // The id is echoed back on the response.
    assert_eq!(resp.request_id.as_deref(), Some("e2e-trace-01"));

    server.shutdown(); // flushes the access log

    let text = std::fs::read_to_string(&log).expect("access log written");
    let records: Vec<JsonValue> = text.lines().map(|l| parse_line(l).unwrap()).collect();
    let str_of = |v: &JsonValue, k: &str| v.get(k).and_then(JsonValue::as_str).map(str::to_owned);
    let num_of = |v: &JsonValue, k: &str| v.get(k).and_then(JsonValue::as_f64).unwrap() as u64;

    // The request record carries the trace id.
    let req = records
        .iter()
        .find(|r| str_of(r, "type").as_deref() == Some("request"))
        .expect("request record");
    assert_eq!(str_of(req, "trace_id").as_deref(), Some("e2e-trace-01"));

    // The span records form one single-rooted tree under that trace id.
    let spans: Vec<&JsonValue> = records
        .iter()
        .filter(|r| {
            str_of(r, "type").as_deref() == Some("trace_span")
                && str_of(r, "trace_id").as_deref() == Some("e2e-trace-01")
        })
        .collect();
    let roots: Vec<&&JsonValue> = spans
        .iter()
        .filter(|s| num_of(s, "parent_id") == 0)
        .collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(str_of(roots[0], "name").as_deref(), Some("POST /v1/solve"));
    let ids: Vec<u64> = spans.iter().map(|s| num_of(s, "span_id")).collect();
    for s in &spans {
        let parent = num_of(s, "parent_id");
        assert!(
            parent == 0 || ids.contains(&parent),
            "span {} has a dangling parent {parent}",
            num_of(s, "span_id"),
        );
    }
    let names: Vec<String> = spans.iter().filter_map(|s| str_of(s, "name")).collect();
    for expected in ["spec.solve", "clustering.search", "req.parse", "spec.table"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing span `{expected}` in {names:?}"
        );
    }
    // The cache marks annotate their tier outcome.
    let mark = spans
        .iter()
        .find(|s| str_of(s, "name").as_deref() == Some("cache.solve"))
        .expect("cache.solve mark");
    assert_eq!(str_of(mark, "label").as_deref(), Some("miss"));

    let _ = std::fs::remove_file(&log);
}

#[test]
fn debug_recent_reports_request_summaries() {
    let mut config = test_config();
    config.recent = 8;
    let server = Server::start(config).expect("bind");
    let addr = server.local_addr();
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();

    let body = br#"{"dist":"det:11","e":0.3,"horizon":1024}"#;
    let miss = conn
        .request_with(
            "POST",
            "/v1/solve",
            body,
            &[("x-request-id", "recent-miss")],
        )
        .unwrap();
    assert_eq!(miss.status, 200);
    assert_eq!(
        conn.request("POST", "/v1/solve", body)
            .unwrap()
            .cache
            .as_deref(),
        Some("hit")
    );

    let resp = conn.request("GET", "/debug/recent", b"").unwrap();
    assert_eq!(resp.status, 200);
    let v = parse_line(&resp.text()).expect("recent body parses");
    assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("recent"));
    assert_eq!(v.get("capacity").and_then(JsonValue::as_f64), Some(8.0));
    let requests = v.get("requests").and_then(JsonValue::as_array).unwrap();
    assert_eq!(requests.len(), 2, "{}", resp.text());
    let path = |r: &JsonValue| r.get("path").and_then(JsonValue::as_str).map(str::to_owned);
    let cache = |r: &JsonValue| {
        r.get("cache")
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
    };
    assert_eq!(path(&requests[0]).as_deref(), Some("/v1/solve"));
    assert_eq!(cache(&requests[0]).as_deref(), Some("miss"));
    assert_eq!(
        requests[0].get("trace_id").and_then(JsonValue::as_str),
        Some("recent-miss")
    );
    assert_eq!(cache(&requests[1]).as_deref(), Some("hit"));
    for r in requests {
        assert!(r.get("latency_us").and_then(JsonValue::as_f64).unwrap() > 0.0);
        assert_eq!(r.get("status").and_then(JsonValue::as_f64), Some(200.0));
    }
    // The API surface mirrors the drain report's accessor (which by now
    // also saw the `/debug/recent` scrape itself).
    let recent = server.recent_requests();
    assert_eq!(recent.len(), 3);
    assert_eq!(recent[2].path, "/debug/recent");
    server.shutdown();
}

#[test]
fn shutdown_drains_and_closes_the_listener() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();
    let resp = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);

    let stop = server.stop_flag();
    stop.stop();
    assert!(server.is_stopping());
    server.shutdown();

    // Every worker has exited and dropped its listener clone, so new
    // connections are refused.
    assert!(Conn::connect(addr, Duration::from_millis(500)).is_err());
}
