//! End-to-end tests: a real server on an ephemeral port, exercised over
//! real sockets with the crate's own client.
//!
//! The load-bearing assertions are the caching ones: a second identical
//! solve must be a *hit* (no second optimizer timing span), and N
//! concurrent identical solves must collapse to exactly one compute
//! (`solve_cache_misses == 1` on `/metrics`, regardless of thread
//! interleaving).

use std::sync::{Arc, Barrier};
use std::time::Duration;

use evcap_obs::{parse_line, JsonValue};
use evcap_serve::client::{self, Conn};
use evcap_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        cache_cap: 64,
        shards: 4,
        read_timeout: Duration::from_millis(500),
        coalesce_timeout: Duration::from_secs(20),
        max_slots: 500_000,
        ..ServeConfig::default()
    }
}

fn metric(server: &Server, name: &str) -> f64 {
    let resp = client::get(server.local_addr(), "/metrics", TIMEOUT).expect("GET /metrics");
    assert_eq!(resp.status, 200);
    let v = parse_line(&resp.text()).expect("metrics body parses");
    v.get(name)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("metrics has no `{name}`: {}", resp.text()))
}

#[test]
fn health_metrics_and_routing() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    let resp = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let v = parse_line(&resp.text()).expect("health body parses");
    assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"));

    let resp = client::get(addr, "/nope", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);
    let v = parse_line(&resp.text()).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("not_found"));

    // Wrong method on a real route.
    let resp = client::get(addr, "/v1/solve", TIMEOUT).unwrap();
    assert_eq!(resp.status, 405);

    // The metrics endpoint counts what just happened and parses as JSON.
    assert!(metric(&server, "requests") >= 3.0);
    assert_eq!(metric(&server, "responses_4xx"), 2.0);

    server.shutdown();
}

#[test]
fn second_identical_solve_is_a_cache_hit_with_no_second_optimizer_span() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    // The timing registry is process-global; only this test solves with the
    // clustering optimizer, so the `clustering.search` span count below is
    // attributable to these two requests alone.
    evcap_obs::timing::set_enabled(true);
    evcap_obs::timing::reset();

    // Two spellings of the same scenario: alias + trailing-zero float.
    let body_a = br#"{"dist":"weibull:40.0,3","e":0.2,"policy":"clustering","horizon":4096}"#;
    let body_b = br#"{"dist":"weibull:40,3.00","e":0.2,"policy":"clustering","horizon":4096}"#;
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/solve", body_a).unwrap();
    let second = conn.request("POST", "/v1/solve", body_b).unwrap();
    evcap_obs::timing::set_enabled(false);

    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(second.cache.as_deref(), Some("hit"));
    // Hit and miss replay byte-identical bodies.
    assert_eq!(first.body, second.body);

    // Exactly one optimizer run: the second request never touched the
    // clustering search.
    let spans = evcap_obs::timing::drain_spans();
    let search = spans
        .iter()
        .find(|(name, _)| *name == "clustering.search")
        .expect("the miss ran the optimizer under an enabled registry");
    assert_eq!(search.1.count, 1, "second solve must not re-optimize");

    assert_eq!(metric(&server, "solve_cache_hits"), 1.0);
    assert_eq!(metric(&server, "solve_cache_misses"), 1.0);
    server.shutdown();
}

#[test]
fn concurrent_identical_solves_collapse_to_one_compute() {
    let clients = 4usize;
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(clients));
    let body = br#"{"dist":"erlang:4,0.2","e":0.15,"horizon":8192}"#;
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut conn = Conn::connect(addr, TIMEOUT).expect("connect");
                    barrier.wait();
                    let resp = conn.request("POST", "/v1/solve", body).expect("solve");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    resp.body
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // All four clients got the same answer, from exactly one computation:
    // one miss (the leader); everyone else either coalesced onto the
    // in-flight solve or hit the fresh cache entry.
    for b in &bodies[1..] {
        assert_eq!(*b, bodies[0]);
    }
    // One metrics snapshot (the GET itself would inflate later reads).
    let resp = client::get(addr, "/metrics", TIMEOUT).unwrap();
    let m = parse_line(&resp.text()).unwrap();
    let f = |k: &str| m.get(k).and_then(JsonValue::as_f64).unwrap();
    assert_eq!(f("solve_cache_misses"), 1.0);
    assert_eq!(
        f("solve_cache_hits") + f("solve_cache_coalesced"),
        (clients - 1) as f64
    );
    assert_eq!(f("solve_requests"), clients as f64);
    assert_eq!(f("responses_2xx"), clients as f64);
    server.shutdown();
}

#[test]
fn simulate_is_deterministic_and_cached() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    let body = br#"{"dist":"det:7","e":0.3,"slots":20000,"seed":42,"horizon":1024}"#;
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/simulate", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    let v = parse_line(&first.text()).unwrap();
    assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("simulate"));
    assert_eq!(v.get("slots").and_then(JsonValue::as_f64), Some(20_000.0));
    assert_eq!(v.get("seed").and_then(JsonValue::as_f64), Some(42.0));
    let qom = v.get("qom").and_then(JsonValue::as_f64).expect("qom");
    assert!(qom > 0.0 && qom <= 1.0, "qom = {qom}");

    let second = conn.request("POST", "/v1/simulate", body).unwrap();
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);
    assert_eq!(metric(&server, "sim_cache_hits"), 1.0);

    // Over-budget slot counts are refused up front.
    let resp = client::post(
        addr,
        "/v1/simulate",
        br#"{"dist":"det:7","e":0.3,"slots":900000}"#,
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    server.shutdown();
}

#[test]
fn batched_simulate_is_cached_and_bounds_checked() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    let body =
        br#"{"dist":"det:7","e":0.3,"slots":10000,"seed":42,"horizon":1024,"replications":6}"#;
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/simulate", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.cache.as_deref(), Some("miss"));
    let v = parse_line(&first.text()).unwrap();
    assert_eq!(v.get("replications").and_then(JsonValue::as_f64), Some(6.0));
    assert_eq!(
        v.get("qom_per_seed")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::len),
        Some(6)
    );

    // The identical batched request replays the cached bytes.
    let second = conn.request("POST", "/v1/simulate", body).unwrap();
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);

    // Same scenario, different replication count: a distinct cache entry.
    let other =
        br#"{"dist":"det:7","e":0.3,"slots":10000,"seed":42,"horizon":1024,"replications":5}"#;
    let third = conn.request("POST", "/v1/simulate", other).unwrap();
    assert_eq!(third.cache.as_deref(), Some("miss"));

    // Zero and absurd replication counts are structured 400s.
    for bad in [
        &br#"{"dist":"det:7","e":0.3,"slots":10000,"replications":0}"#[..],
        br#"{"dist":"det:7","e":0.3,"slots":10000,"replications":1000000}"#,
        br#"{"dist":"det:7","e":0.3,"slots":400000,"replications":4}"#,
    ] {
        let resp = client::post(addr, "/v1/simulate", bad, TIMEOUT).unwrap();
        assert_eq!(resp.status, 400, "{}", resp.text());
        let v = parse_line(&resp.text()).unwrap();
        assert_eq!(
            v.get("kind").and_then(JsonValue::as_str),
            Some("invalid_field"),
            "{}",
            resp.text()
        );
    }
    server.shutdown();
}

#[test]
fn spelling_variants_share_one_cache_entry_on_both_endpoints() {
    // Regression: the cache key must be built from the *canonical* dist and
    // recharge spellings, so `exp:0.050` and `exponential:0.05` (an alias
    // plus a trailing-zero float) land on the same entry — on `/v1/solve`
    // and `/v1/simulate` alike.
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();

    let solve_a = br#"{"dist":"exp:0.050","e":0.2,"horizon":2048}"#;
    let solve_b = br#"{"dist":"exponential:0.05","e":0.2,"horizon":2048}"#;
    let first = conn.request("POST", "/v1/solve", solve_a).unwrap();
    let second = conn.request("POST", "/v1/solve", solve_b).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);

    let sim_a = br#"{"dist":"exp:0.050","e":0.2,"recharge":"bernoulli:0.50,0.40","slots":5000,"seed":7,"horizon":2048}"#;
    let sim_b = br#"{"dist":"exponential:0.05","e":0.2,"recharge":"bernoulli:0.5,0.4","slots":5000,"seed":7,"horizon":2048}"#;
    let first = conn.request("POST", "/v1/simulate", sim_a).unwrap();
    let second = conn.request("POST", "/v1/simulate", sim_b).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);

    assert_eq!(metric(&server, "solve_cache_misses"), 1.0);
    assert_eq!(metric(&server, "solve_cache_hits"), 1.0);
    assert_eq!(metric(&server, "sim_cache_misses"), 1.0);
    assert_eq!(metric(&server, "sim_cache_hits"), 1.0);
    server.shutdown();
}

#[test]
fn bad_requests_get_structured_errors_over_the_wire() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    // NaN inside a spec string: the shared spec module rejects it and the
    // server translates that into a structured 400 (satellite fix).
    let resp = client::post(
        addr,
        "/v1/solve",
        br#"{"dist":"weibull:nan,3","e":0.2}"#,
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    let v = parse_line(&resp.text()).expect("error body parses");
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("invalid_spec")
    );
    assert!(
        v.get("message")
            .and_then(JsonValue::as_str)
            .is_some_and(|m| m.contains("not finite")),
        "{}",
        resp.text()
    );

    // Malformed JSON.
    let resp = client::post(addr, "/v1/solve", b"{not json", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);

    // None of those polluted the cache.
    assert_eq!(metric(&server, "solve_cache_misses"), 0.0);
    server.shutdown();
}

#[test]
fn oversized_bodies_are_refused_at_the_framing_layer() {
    // A small body budget, and a body that still fits comfortably in the
    // socket send buffer so the client finishes writing before the server
    // answers 413 and closes.
    let mut config = test_config();
    config.limits.max_body = 1024;
    let server = Server::start(config).expect("bind");
    let addr = server.local_addr();

    let big = vec![b'x'; 4 * 1024];
    let resp = client::post(addr, "/v1/solve", &big, TIMEOUT).unwrap();
    assert_eq!(resp.status, 413);
    assert!(!resp.keep_alive);
    server.shutdown();
}

#[test]
fn shutdown_drains_and_closes_the_listener() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();
    let resp = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);

    let stop = server.stop_flag();
    stop.stop();
    assert!(server.is_stopping());
    server.shutdown();

    // Every worker has exited and dropped its listener clone, so new
    // connections are refused.
    assert!(Conn::connect(addr, Duration::from_millis(500)).is_err());
}
