//! End-to-end proof that the `SolvedPolicy` artifact cache deduplicates
//! solves *across* response-cache entries.
//!
//! Two `/v1/simulate` requests for the same scenario with different slot
//! counts are distinct response-cache entries, but must share one solve —
//! and a follow-up `/v1/solve` for the same scenario must reuse it too.
//!
//! This lives in its own integration-test binary because the `evcap_obs`
//! timing registry is process-global: the span counts below are only
//! attributable to these requests if no other test in the process runs the
//! clustering optimizer under an enabled registry (e2e.rs has such a test).

use std::time::Duration;

use evcap_obs::{parse_line, JsonValue};
use evcap_serve::client::{self, Conn};
use evcap_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        cache_cap: 64,
        shards: 4,
        read_timeout: Duration::from_millis(500),
        coalesce_timeout: Duration::from_secs(20),
        max_slots: 500_000,
        ..ServeConfig::default()
    }
}

fn metric(server: &Server, name: &str) -> f64 {
    let resp = client::get(server.local_addr(), "/metrics", TIMEOUT).expect("GET /metrics");
    assert_eq!(resp.status, 200);
    let v = parse_line(&resp.text()).expect("metrics body parses");
    v.get(name)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("metrics has no `{name}`: {}", resp.text()))
}

fn clustering_search_count() -> u64 {
    // Draining resets the registry, so this is called once, at the end.
    let spans = evcap_obs::timing::drain_spans();
    spans
        .iter()
        .find(|(name, _)| *name == "clustering.search")
        .map_or(0, |(_, agg)| agg.count)
}

#[test]
fn simulate_and_solve_share_one_artifact_per_scenario() {
    let server = Server::start(test_config()).expect("bind");
    let addr = server.local_addr();

    evcap_obs::timing::set_enabled(true);
    evcap_obs::timing::reset();

    // Same scenario, different slot counts: distinct response-cache keys.
    let sim_a = br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","slots":20000,"seed":9,"horizon":4096}"#;
    let sim_b = br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","slots":30000,"seed":9,"horizon":4096}"#;
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();

    let first = conn.request("POST", "/v1/simulate", sim_a).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.cache.as_deref(), Some("miss"));

    let second = conn.request("POST", "/v1/simulate", sim_b).unwrap();
    assert_eq!(second.status, 200, "{}", second.text());
    assert_eq!(
        second.cache.as_deref(),
        Some("miss"),
        "different slot counts are distinct response-cache entries"
    );

    // Both responses simulated distinct slot counts...
    let a = parse_line(&first.text()).unwrap();
    let b = parse_line(&second.text()).unwrap();
    assert_eq!(a.get("slots").and_then(JsonValue::as_f64), Some(20_000.0));
    assert_eq!(b.get("slots").and_then(JsonValue::as_f64), Some(30_000.0));

    // ...yet the clustering optimizer ran exactly once, and the artifact
    // cache shows one miss (the solve) plus one hit (the reuse).
    assert_eq!(metric(&server, "artifact_cache_misses"), 1.0);
    assert_eq!(metric(&server, "artifact_cache_hits"), 1.0);

    // `/v1/solve` for the same scenario is a response-cache miss (different
    // endpoint prefix) but reuses the cached artifact: still one solve.
    let solve = br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","horizon":4096}"#;
    let third = conn.request("POST", "/v1/solve", solve).unwrap();
    assert_eq!(third.status, 200, "{}", third.text());
    assert_eq!(third.cache.as_deref(), Some("miss"));
    assert_eq!(metric(&server, "artifact_cache_misses"), 1.0);
    assert_eq!(metric(&server, "artifact_cache_hits"), 2.0);

    evcap_obs::timing::set_enabled(false);
    let searches = clustering_search_count();
    assert_eq!(
        searches, 1,
        "three requests for one scenario must run the optimizer once"
    );

    server.shutdown();
}
