//! Proves the hot-path satellite: after a request body is parsed, looking
//! up its cache identities allocates nothing. `canonical_key()` builds a
//! fresh `String`; the scenario layer therefore computes it exactly once
//! at parse time and every later use borrows.
//!
//! This lives in its own test binary because it installs a counting
//! global allocator (and so must not share a process with tests that
//! measure anything else).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use evcap_serve::scenario::{SimulateScenario, SolveScenario};

/// Counts every heap allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn cache_key_lookups_allocate_nothing_after_parse() {
    let solve = SolveScenario::from_body(br#"{"dist":"weibull:40,3","e":0.2}"#).unwrap();
    let sim = SimulateScenario::from_body(
        br#"{"dist":"weibull:40,3","e":0.2,"slots":5000,"seed":7}"#,
        1_000_000,
    )
    .unwrap();

    let before = allocations();
    for _ in 0..100 {
        std::hint::black_box(solve.cache_key());
        std::hint::black_box(solve.artifact_key());
        std::hint::black_box(sim.cache_key());
        std::hint::black_box(sim.artifact_key());
    }
    assert_eq!(
        allocations() - before,
        0,
        "cache-key lookups on the serve hit path must borrow, not rebuild"
    );

    // The borrowed keys are stable (same bytes, same address) across
    // calls — precomputed once at parse time.
    assert_eq!(solve.cache_key().as_ptr(), solve.cache_key().as_ptr());
    assert_eq!(
        solve.cache_key(),
        format!("solve|{}", solve.scenario.canonical_key())
    );
    assert_eq!(sim.artifact_key(), sim.scenario.canonical_key());
}
