//! Warm-restart end-to-end: a server populated through `--store`, killed,
//! and restarted against the same directory must serve the stored scenario
//! from disk — zero optimizer work — while a corrupted record for the same
//! key must fall back to exactly one fresh solve, byte-identically.
//!
//! This lives in its own test binary because the proof is a *process-global*
//! span count: no other test in this process may run the clustering
//! optimizer while we assert how many `clustering.search` spans exist.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::time::Duration;

use evcap_obs::{parse_line, JsonValue};
use evcap_serve::client::{self, Conn};
use evcap_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);
const BODY: &[u8] = br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","horizon":4096}"#;

fn store_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        cache_cap: 64,
        shards: 4,
        read_timeout: Duration::from_millis(500),
        coalesce_timeout: Duration::from_secs(20),
        max_slots: 500_000,
        store: Some(dir.display().to_string()),
        ..ServeConfig::default()
    }
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("evcap-store-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn metric(server: &Server, name: &str) -> f64 {
    let resp = client::get(server.local_addr(), "/metrics", TIMEOUT).expect("GET /metrics");
    assert_eq!(resp.status, 200);
    let v = parse_line(&resp.text()).expect("metrics body parses");
    v.get(name)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("metrics has no `{name}`: {}", resp.text()))
}

fn clustering_search_count() -> u64 {
    evcap_obs::timing::drain_spans()
        .iter()
        .find(|(name, _)| *name == "clustering.search")
        .map_or(0, |(_, stats)| stats.count)
}

#[test]
fn warm_restart_serves_from_disk_and_corruption_falls_back_to_one_solve() {
    let dir = scratch_dir();

    // Phase A — populate: a fresh server solves cold and writes through.
    let server = Server::start(store_config(&dir)).expect("bind");
    let mut conn = Conn::connect(server.local_addr(), TIMEOUT).unwrap();
    let first = conn.request("POST", "/v1/solve", BODY).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(metric(&server, "store_misses"), 1.0);
    assert_eq!(metric(&server, "store_appends"), 1.0);
    let reference_body = first.body.clone();
    drop(conn);
    server.shutdown();

    // Phase B — warm restart: a new process-equivalent server against the
    // same directory. The in-memory tier is empty, so the request misses
    // the hot cache — but the disk tier answers, and the optimizer never
    // runs: zero `clustering.search` spans under an enabled registry.
    evcap_obs::timing::set_enabled(true);
    evcap_obs::timing::reset();
    let server = Server::start(store_config(&dir)).expect("bind");
    let mut conn = Conn::connect(server.local_addr(), TIMEOUT).unwrap();
    let warm = conn.request("POST", "/v1/solve", BODY).unwrap();
    evcap_obs::timing::set_enabled(false);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.cache.as_deref(), Some("miss"), "hot tier is empty");
    assert_eq!(
        clustering_search_count(),
        0,
        "a stored artifact must never re-run the optimizer"
    );
    assert_eq!(
        warm.body, reference_body,
        "disk-tier responses replay the cold solve byte for byte"
    );
    assert_eq!(metric(&server, "store_hits"), 1.0);
    assert_eq!(metric(&server, "store_rejects"), 0.0);
    drop(conn);
    server.shutdown();

    // Phase C — corrupt the stored record: flip the final payload byte, so
    // the scenario prefix (and thus the index) survives but the checksum
    // fails. The next restart must reject the record, fall back to exactly
    // one fresh solve, and still answer byte-identically.
    let path = dir.join(evcap_store::STORE_FILE);
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .expect("open store file");
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).expect("read store file");
    assert!(bytes.len() > 9, "store holds the appended record");
    let last = bytes.len() - 1;
    file.seek(SeekFrom::Start(last as u64)).unwrap();
    file.write_all(&[bytes[last] ^ 0xFF]).unwrap();
    file.sync_data().unwrap();
    drop(file);

    evcap_obs::timing::set_enabled(true);
    evcap_obs::timing::reset();
    let server = Server::start(store_config(&dir)).expect("bind");
    let mut conn = Conn::connect(server.local_addr(), TIMEOUT).unwrap();
    let healed = conn.request("POST", "/v1/solve", BODY).unwrap();
    evcap_obs::timing::set_enabled(false);
    assert_eq!(healed.status, 200);
    assert_eq!(
        clustering_search_count(),
        1,
        "a rejected record falls back to exactly one fresh solve"
    );
    assert_eq!(
        healed.body, reference_body,
        "the fallback solve replays the original bytes"
    );
    assert_eq!(metric(&server, "store_rejects"), 1.0);
    // The write-through after the fallback solve self-heals the store: the
    // fresh record supersedes the corrupt one under the same key.
    assert_eq!(metric(&server, "store_appends"), 1.0);
    drop(conn);
    server.shutdown();

    // Phase D — the healed store serves from disk again.
    evcap_obs::timing::set_enabled(true);
    evcap_obs::timing::reset();
    let server = Server::start(store_config(&dir)).expect("bind");
    let mut conn = Conn::connect(server.local_addr(), TIMEOUT).unwrap();
    let resp = conn.request("POST", "/v1/solve", BODY).unwrap();
    evcap_obs::timing::set_enabled(false);
    assert_eq!(resp.status, 200);
    assert_eq!(clustering_search_count(), 0, "the store healed itself");
    assert_eq!(resp.body, reference_body);
    assert_eq!(metric(&server, "store_hits"), 1.0);
    drop(conn);
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
