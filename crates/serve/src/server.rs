//! The daemon: listener, worker pool, routing, and graceful shutdown.
//!
//! Architecture: the listener socket is nonblocking and shared (via
//! `try_clone`) by a fixed pool of worker threads. Each worker loops on
//! `accept`; `WouldBlock` means "no connection pending", so the worker
//! naps briefly and re-checks the shutdown flag — that poll loop is what
//! makes shutdown deterministic without platform-specific selectors.
//!
//! An accepted connection is handled to completion by one worker
//! (keep-alive requests loop in place), so peak concurrency equals the
//! pool size and everything beyond that waits in the kernel backlog.
//! Blocking reads carry a socket timeout, bounding how long a quiet or
//! trickling client can pin a worker.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use evcap_obs::trace::TraceRecord;
use evcap_obs::{FlightRecorder, JsonObject, JsonlSink, RequestSample};
use evcap_spec::SolvedPolicy;

use crate::cache::{Fetch, ShardedCache};
use crate::handlers;
use crate::http::{self, Limits, ReadError, Request};
use crate::metrics::Metrics;
use crate::prometheus;
use crate::scenario::{ApiError, SimulateScenario, SolveScenario};

/// Everything `evcap serve` can tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads (= peak concurrent connections).
    pub threads: usize,
    /// Total cached responses per cache (solve and simulate each get one).
    pub cache_cap: usize,
    /// Lock shards per cache.
    pub shards: usize,
    /// Request framing limits.
    pub limits: Limits,
    /// Socket read timeout: bounds idle keep-alive and trickling clients.
    pub read_timeout: Duration,
    /// How long a coalesced request waits on the leader before a 503.
    pub coalesce_timeout: Duration,
    /// Largest `slots` a `/v1/simulate` request may ask for.
    pub max_slots: u64,
    /// Optional JSONL access-log path (one `request` record per request).
    pub access_log: Option<String>,
    /// Audit every freshly solved artifact against the paper's analytic
    /// invariants (`evcap-audit`) before it enters the artifact cache.
    /// A violation answers 500 and — like every compute failure — is never
    /// cached, so a fixed solver serves clean artifacts immediately.
    pub validate_artifacts: bool,
    /// Collect a per-request span tree (trace context). On by default;
    /// disabling skips span/event collection entirely (the flight recorder
    /// then records zeroed stage breakdowns).
    pub trace: bool,
    /// Flight-recorder capacity: how many recent request summaries
    /// `GET /debug/recent` (and the drain report) can show.
    pub recent: usize,
    /// Slow-request threshold in milliseconds; requests at or above it
    /// dump their full span tree to stderr (and tag the access log).
    /// 0 disables.
    pub slow_ms: u64,
    /// Optional persistent artifact store directory (`evcap-store`). When
    /// set, the artifact lookup becomes three-tiered: hot in-memory cache →
    /// disk store → fresh solve. Every disk load must pass
    /// `evcap_audit::certify` before being served; rejected records are
    /// counted and re-solved, and fresh solves are written through.
    pub store: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_cap: 1024,
            shards: 8,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            coalesce_timeout: Duration::from_secs(30),
            max_slots: 2_000_000,
            access_log: None,
            validate_artifacts: false,
            trace: true,
            recent: 64,
            slow_ms: 0,
            store: None,
        }
    }
}

/// State shared by every worker.
struct Shared {
    config: ServeConfig,
    metrics: Metrics,
    solve_cache: ShardedCache<String, ApiError>,
    sim_cache: ShardedCache<String, ApiError>,
    /// Second cache tier: `SolvedPolicy` artifacts keyed by
    /// `Scenario::canonical_key()`. Response-cache misses that share a
    /// scenario (e.g. `/v1/simulate` varying only in slots/seed, or a
    /// `/v1/solve` for the same physics) share one clustering/LP solve.
    artifact_cache: ShardedCache<Arc<SolvedPolicy>, ApiError>,
    /// Third cache tier: the persistent on-disk artifact store
    /// (`--store`). A mutex is fine here — the disk tier is only consulted
    /// on artifact-cache misses, which already coalesce to one leader.
    store: Option<Mutex<evcap_store::Store>>,
    shutdown: AtomicBool,
    access_log: Option<Mutex<JsonlSink>>,
    /// Last-N request summaries (see [`FlightRecorder`]).
    flight: FlightRecorder,
}

/// A running policy server.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

/// How long an idle worker naps between accept attempts (also the grain of
/// shutdown responsiveness).
const ACCEPT_NAP: Duration = Duration::from_millis(2);

impl Server {
    /// Binds the address and starts the worker pool. Returns as soon as the
    /// socket is listening — a client may connect immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind/clone failures and access-log creation failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let access_log = match &config.access_log {
            Some(path) => Some(Mutex::new(JsonlSink::create(path)?)),
            None => None,
        };
        let store = match &config.store {
            Some(dir) => Some(Mutex::new(
                evcap_store::Store::open(std::path::Path::new(dir))
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            )),
            None => None,
        };
        let threads = config.threads.max(1);
        let shared = Arc::new(Shared {
            solve_cache: ShardedCache::new(config.cache_cap, config.shards),
            sim_cache: ShardedCache::new(config.cache_cap, config.shards),
            artifact_cache: ShardedCache::new(config.cache_cap, config.shards),
            store,
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            access_log,
            flight: FlightRecorder::new(config.recent),
            config,
        });
        let workers = (0..threads)
            .map(|i| {
                let listener = listener.try_clone()?;
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("evcap-serve-{i}"))
                    .spawn(move || worker_loop(&listener, &shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Server {
            shared,
            workers,
            addr,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters for the solve cache.
    pub fn solve_cache_stats(&self) -> crate::cache::StatsSnapshot {
        self.shared.solve_cache.stats()
    }

    /// Counters for the `SolvedPolicy` artifact cache.
    pub fn artifact_cache_stats(&self) -> crate::cache::StatsSnapshot {
        self.shared.artifact_cache.stats()
    }

    /// The flight recorder's retained request summaries, oldest first
    /// (the same data `GET /debug/recent` serves; used for the drain
    /// report).
    pub fn recent_requests(&self) -> Vec<RecentRequest> {
        decode_recent(&self.shared)
    }

    /// A flag that makes the server drain and stop when set; safe to hand
    /// to a signal handler loop.
    pub fn stop_flag(&self) -> StopFlag {
        StopFlag {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Requests shutdown and joins every worker. In-flight requests finish;
    /// idle workers exit within one accept nap; a worker blocked reading
    /// exits after at most the configured read timeout.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(log) = &self.shared.access_log {
            if let Ok(sink) = log.lock() {
                // Flush happens on drop of the BufWriter; nothing to do
                // beyond holding the lock so no worker is mid-write.
                drop(sink);
            }
        }
    }

    /// Whether shutdown has been requested (by [`Server::shutdown`] or a
    /// [`StopFlag`]).
    pub fn is_stopping(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A cloneable handle that can stop a [`Server`] from another thread.
pub struct StopFlag {
    shared: Arc<Shared>,
}

impl StopFlag {
    /// Requests shutdown (workers drain; the owner still calls
    /// [`Server::shutdown`] to join them).
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Routes the flight recorder can tag (index = `path_tag`).
const ROUTES: [&str; 6] = [
    "other",
    "/healthz",
    "/metrics",
    "/v1/solve",
    "/v1/simulate",
    "/debug/recent",
];

/// Cache-outcome labels the flight recorder can tag (index = `cache_tag`).
const CACHE_LABELS: [&str; 6] = ["none", "hit", "miss", "coalesced", "failed", "timeout"];

/// Objective labels the flight recorder can tag (index = `objective_tag`).
/// Slot 0 is "no scenario attached" (non-scenario routes and parse
/// failures); scenario-bearing requests use `Objective::index() + 1`.
const OBJECTIVE_LABELS: [&str; 4] = ["none", "qom", "aoi-mean", "aoi-peak"];

/// Solve stages broken out per request (order matches
/// [`RequestSample::stage_us`]): body parse, scenario canonicalization,
/// LP solve, clustering search, table compilation.
const STAGES: [&str; 5] = [
    "req.parse",
    "req.canonicalize",
    "lp.solve",
    "clustering.search",
    "spec.table",
];

fn route_tag(path: &str) -> u8 {
    ROUTES.iter().position(|r| *r == path).unwrap_or(0) as u8
}

fn cache_tag(label: &str) -> u8 {
    CACHE_LABELS.iter().position(|l| *l == label).unwrap_or(0) as u8
}

/// One decoded flight-recorder entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RecentRequest {
    /// Route (one of the server's paths, or `other`).
    pub path: &'static str,
    /// Response status.
    pub status: u16,
    /// Cache outcome label (`none` when the route has no cache).
    pub cache: &'static str,
    /// Solve objective label (`none` when no scenario parsed).
    pub objective: &'static str,
    /// End-to-end latency, microseconds.
    pub latency_us: f64,
    /// The request's trace id.
    pub trace_id: String,
    /// Per-stage microseconds: parse, canonicalize, lp, clustering,
    /// table-compile (zero when tracing is disabled or the stage did not
    /// run).
    pub stage_us: [u32; 5],
}

impl RecentRequest {
    fn from_sample(s: &RequestSample) -> Self {
        RecentRequest {
            path: ROUTES.get(s.path_tag as usize).copied().unwrap_or("other"),
            status: s.status,
            cache: CACHE_LABELS
                .get(s.cache_tag as usize)
                .copied()
                .unwrap_or("none"),
            objective: OBJECTIVE_LABELS
                .get(s.objective_tag as usize)
                .copied()
                .unwrap_or("none"),
            latency_us: s.latency_ns as f64 / 1e3,
            trace_id: s.trace_id(),
            stage_us: s.stage_us,
        }
    }

    /// One-line summary for drain reports.
    pub fn summary(&self) -> String {
        format!(
            "{} {} {} obj={} {:.1}ms trace={} stages[us] parse={} canon={} lp={} cluster={} table={}",
            self.path,
            self.status,
            self.cache,
            self.objective,
            self.latency_us / 1e3,
            self.trace_id,
            self.stage_us[0],
            self.stage_us[1],
            self.stage_us[2],
            self.stage_us[3],
            self.stage_us[4],
        )
    }
}

fn decode_recent(shared: &Shared) -> Vec<RecentRequest> {
    shared
        .flight
        .recent()
        .iter()
        .map(RecentRequest::from_sample)
        .collect()
}

/// Renders `GET /debug/recent`: the retained summaries, oldest first.
fn render_recent(shared: &Shared) -> String {
    let requests: Vec<String> = decode_recent(shared)
        .iter()
        .map(|r| {
            let mut obj = JsonObject::new();
            obj.field_str("path", r.path);
            obj.field_u64("status", u64::from(r.status));
            obj.field_str("cache", r.cache);
            obj.field_str("objective", r.objective);
            obj.field_f64("latency_us", r.latency_us);
            obj.field_str("trace_id", &r.trace_id);
            for (stage, us) in STAGES.iter().zip(r.stage_us) {
                let field = format!("{}_us", stage.replace('.', "_"));
                obj.field_u64(&field, u64::from(us));
            }
            obj.finish()
        })
        .collect();
    let mut obj = JsonObject::with_type("recent");
    obj.field_usize("capacity", shared.flight.capacity());
    obj.field_u64("recorded", shared.flight.recorded());
    obj.field_raw_array("requests", &requests);
    obj.finish()
}

/// Sums per-stage span durations out of a finished trace (µs, saturated).
fn stage_breakdown(record: Option<&TraceRecord>) -> [u32; 5] {
    let mut out = [0u32; 5];
    let Some(record) = record else {
        return out;
    };
    for event in &record.events {
        if let Some(i) = STAGES.iter().position(|s| *s == event.name) {
            let us = (event.dur_ns / 1_000).min(u64::from(u32::MAX)) as u32;
            // deepcheck:allow(panic-path): `i` is a position into STAGES, whose length matches the output array
            out[i] = out[i].saturating_add(us);
        }
    }
    out
}

fn worker_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connection();
                // Accepted sockets are blocking with a read timeout: the
                // worker parses at most one request at a time and the
                // timeout bounds how long a quiet client holds the slot.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
                handle_connection(stream, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_NAP);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (e.g. aborted connection):
                // back off briefly rather than spin.
                std::thread::sleep(ACCEPT_NAP);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // Reused across keep-alive requests: `finish_into` swaps span buffers
    // with the thread-local context, so a warmed connection collects each
    // request's trace without allocating.
    let mut trace_buf = TraceRecord::default();
    loop {
        let request = http::read_request(&mut reader, &shared.config.limits, || {
            http::write_continue(&mut writer)
        });
        let request = match request {
            Ok(r) => r,
            Err(ReadError::Bad { status, message }) => {
                let err = ApiError {
                    status,
                    kind: "bad_request",
                    message: message.to_owned(),
                };
                let _ =
                    http::write_response(&mut writer, status, err.body().as_bytes(), false, &[]);
                return;
            }
            // Clean close, idle timeout, or transport failure: just drop.
            Err(ReadError::Closed | ReadError::Timeout | ReadError::Io(_)) => return,
        };

        // Trace context: honor the client's X-Request-Id, else mint one
        // from the counter-seeded generator (no wall-clock entropy). The
        // generated id lives in a stack buffer — no allocation per request.
        let mut id_buf = [0u8; 16];
        let request_id: &str = match request.request_id.as_deref() {
            Some(id) => id,
            None => evcap_obs::trace::next_trace_id_into(&mut id_buf),
        };
        let trace_guard = shared
            .config
            .trace
            .then(|| evcap_obs::trace::start(request_id));
        let start = Instant::now(); // tidy:allow(instant-now): access-log latency stamp
        let routed = route(&request, shared);
        let traced = trace_guard.is_some_and(|g| g.finish_into(&mut trace_buf));
        let trace_record = traced.then_some(&trace_buf);
        let stopping = shared.shutdown.load(Ordering::SeqCst);
        let keep_alive = request.keep_alive && !stopping;
        let elapsed = start.elapsed();
        let path = request.target.split('?').next().unwrap_or("");
        shared.metrics.request(path, routed.status, elapsed);

        let stage_us = stage_breakdown(trace_record);
        let mut sample = RequestSample {
            path_tag: route_tag(path),
            status: routed.status,
            cache_tag: cache_tag(routed.cache),
            objective_tag: routed.objective,
            latency_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            stage_us,
            ..RequestSample::default()
        };
        sample.set_trace_id(request_id);
        shared.flight.record(&sample);

        let slow =
            shared.config.slow_ms > 0 && elapsed >= Duration::from_millis(shared.config.slow_ms);
        if let Some(log) = &shared.access_log {
            let mut record = JsonObject::with_type("request");
            record.field_str("method", &request.method);
            record.field_str("path", path);
            record.field_u64("status", u64::from(routed.status));
            record.field_f64("micros", elapsed.as_secs_f64() * 1e6);
            record.field_str("trace_id", request_id);
            if !routed.cache.is_empty() {
                record.field_str("cache", routed.cache);
            }
            if slow {
                record.field_bool("slow", true);
            }
            // deepcheck:allow(lock-blocking): the access log is a single-writer sink by design; writes are line-sized and best-effort
            if let Ok(mut sink) = log.lock() {
                let _ = sink.write(record);
                if let Some(trace) = trace_record {
                    let root_name = format!("{} {path}", request.method);
                    let _ = sink.write(evcap_obs::trace::root_record(
                        &trace.trace_id,
                        &root_name,
                        trace.total_ns,
                    ));
                    for event in &trace.events {
                        let _ = sink.write(evcap_obs::trace::event_record(&trace.trace_id, event));
                    }
                }
            }
        }
        if slow {
            dump_slow_request(&request.method, path, &routed, elapsed, trace_record);
        }

        // Fixed-size header scratch: at most id + cache + content-type, so
        // `n_extra` never exceeds the array length.
        let mut extra = [("", ""); 3];
        let mut n_extra = 0;
        extra[n_extra] = ("x-request-id", request_id); // deepcheck:allow(panic-path): n_extra counts at most 3 fixed pushes
        n_extra += 1;
        if !routed.cache.is_empty() {
            extra[n_extra] = ("x-evcap-cache", routed.cache); // deepcheck:allow(panic-path): n_extra counts at most 3 fixed pushes
            n_extra += 1;
        }
        if routed.content_type != APPLICATION_JSON {
            extra[n_extra] = ("content-type", routed.content_type); // deepcheck:allow(panic-path): n_extra counts at most 3 fixed pushes
            n_extra += 1;
        }
        if http::write_response(
            &mut writer,
            routed.status,
            routed.body.as_bytes(),
            keep_alive,
            &extra[..n_extra], // deepcheck:allow(panic-path): n_extra counts at most 3 fixed pushes
        )
        .is_err()
        {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Emits a slow-request span dump on stderr (the access log, when
/// configured, additionally carries the same spans as records).
fn dump_slow_request(
    method: &str,
    path: &str,
    routed: &Routed,
    elapsed: Duration,
    trace: Option<&TraceRecord>,
) {
    let trace_id = trace.map_or("-", |t| t.trace_id.as_str());
    // tidy:allow(print): deliberate slow-request diagnostics on stderr
    eprintln!(
        "slow request: {method} {path} {} {:.1}ms cache={} trace={trace_id}",
        routed.status,
        elapsed.as_secs_f64() * 1e3,
        if routed.cache.is_empty() {
            "none"
        } else {
            routed.cache
        },
    );
    if let Some(trace) = trace {
        for event in &trace.events {
            // tidy:allow(print): deliberate slow-request diagnostics on stderr
            eprintln!(
                "  span {} parent={} start={:.1}us dur={:.1}us{}{}",
                event.name,
                event.parent_id,
                event.start_ns as f64 / 1e3,
                event.dur_ns as f64 / 1e3,
                if event.label.is_empty() {
                    ""
                } else {
                    " label="
                },
                event.label,
            );
        }
    }
}

/// The cache label for "this response never touches a cache".
const NO_CACHE: &str = "";

/// The default response content type.
const APPLICATION_JSON: &str = "application/json";

/// A routed response: status, body, cache disposition, content type, and
/// the solve objective of the parsed scenario (0 when there is none).
struct Routed {
    status: u16,
    body: String,
    cache: &'static str,
    content_type: &'static str,
    objective: u8,
}

impl Routed {
    fn json(status: u16, body: String, cache: &'static str) -> Self {
        Routed {
            status,
            body,
            cache,
            content_type: APPLICATION_JSON,
            objective: 0,
        }
    }

    fn text(status: u16, body: String, content_type: &'static str) -> Self {
        Routed {
            status,
            body,
            cache: NO_CACHE,
            content_type,
            objective: 0,
        }
    }

    /// Tags the response with the scenario's solve objective (see
    /// [`OBJECTIVE_LABELS`] for the index scheme).
    fn with_objective(mut self, objective: evcap_spec::Objective) -> Self {
        self.objective = objective.index() as u8 + 1;
        self
    }
}

/// Whether a `/metrics` request asked for the Prometheus text format:
/// `?format=prometheus` or an `Accept` header preferring `text/plain`.
fn wants_prometheus(request: &Request) -> bool {
    let query = request.target.split_once('?').map_or("", |(_, q)| q);
    if query.split('&').any(|kv| kv == "format=prometheus") {
        return true;
    }
    request
        .accept
        .as_deref()
        .is_some_and(|a| a.to_ascii_lowercase().contains("text/plain"))
}

fn route(request: &Request, shared: &Shared) -> Routed {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let mut obj = JsonObject::with_type("health");
            obj.field_str("status", "ok");
            Routed::json(200, obj.finish(), NO_CACHE)
        }
        ("GET", "/metrics") => {
            let store = store_snapshot(shared);
            if wants_prometheus(request) {
                let tiers = vec![
                    ("solve", shared.solve_cache.shard_snapshots()),
                    ("sim", shared.sim_cache.shard_snapshots()),
                    ("artifact", shared.artifact_cache.shard_snapshots()),
                ];
                Routed::text(
                    200,
                    shared.metrics.render_prometheus(&tiers, &store),
                    prometheus::CONTENT_TYPE,
                )
            } else {
                let body = shared.metrics.render(
                    &shared.solve_cache.stats(),
                    &shared.sim_cache.stats(),
                    &shared.artifact_cache.stats(),
                    &store,
                );
                Routed::json(200, body, NO_CACHE)
            }
        }
        ("GET", "/debug/recent") => Routed::json(200, render_recent(shared), NO_CACHE),
        ("POST", "/v1/solve") => match SolveScenario::from_body(&request.body) {
            Err(e) => Routed::json(e.status, e.body(), NO_CACHE),
            Ok(s) => {
                let objective = s.scenario.objective();
                shared.metrics.objective_request(objective);
                let fetch = shared.solve_cache.get_or_compute(
                    s.cache_key(),
                    shared.config.coalesce_timeout,
                    || {
                        let t = Instant::now(); // tidy:allow(instant-now): access-log latency stamp
                        let result = artifact(shared, &s.scenario, s.artifact_key())
                            .map(|a| handlers::render_solve(&s, &a));
                        shared.metrics.solve_latency.observe(t.elapsed());
                        result
                    },
                );
                evcap_obs::trace::mark("cache.solve", fetch.label());
                render_fetch(fetch, shared).with_objective(objective)
            }
        },
        ("POST", "/v1/simulate") => {
            match SimulateScenario::from_body(&request.body, shared.config.max_slots) {
                Err(e) => Routed::json(e.status, e.body(), NO_CACHE),
                Ok(s) => {
                    let objective = s.scenario.objective();
                    shared.metrics.objective_request(objective);
                    let fetch = shared.sim_cache.get_or_compute(
                        s.cache_key(),
                        shared.config.coalesce_timeout,
                        || {
                            let a = artifact(shared, &s.scenario, s.artifact_key())?;
                            handlers::simulate(&s, &a)
                        },
                    );
                    evcap_obs::trace::mark("cache.sim", fetch.label());
                    render_fetch(fetch, shared).with_objective(objective)
                }
            }
        }
        (_, "/healthz" | "/metrics" | "/debug/recent" | "/v1/solve" | "/v1/simulate") => {
            let err = ApiError {
                status: 405,
                kind: "method_not_allowed",
                message: format!("`{}` is not supported on {path}", request.method),
            };
            Routed::json(405, err.body(), NO_CACHE)
        }
        _ => {
            let err = ApiError {
                status: 404,
                kind: "not_found",
                message: format!("no route for {path}"),
            };
            Routed::json(404, err.body(), NO_CACHE)
        }
    }
}

/// Reads the store-tier size gauges for `/metrics` (counters live in
/// [`Metrics`]; only entries/bytes need the lock).
fn store_snapshot(shared: &Shared) -> crate::metrics::StoreSnapshot {
    match &shared.store {
        None => crate::metrics::StoreSnapshot::default(),
        Some(store) => match store.lock() {
            Ok(store) => crate::metrics::StoreSnapshot {
                enabled: true,
                entries: store.len() as u64,
                bytes: store.bytes(),
            },
            Err(_) => crate::metrics::StoreSnapshot {
                enabled: true,
                ..Default::default()
            },
        },
    }
}

/// Tier 2 of the artifact lookup: the persistent store. Returns the
/// rehydrated artifact only when the record loads cleanly **and** passes
/// `evcap_audit::certify` — a stale, corrupt, or tampered record is
/// counted as a reject and the caller falls back to a fresh solve. Never
/// panics, never serves unverified bytes.
fn store_load(
    shared: &Shared,
    scenario: &evcap_spec::Scenario,
    key: &str,
) -> Option<Arc<SolvedPolicy>> {
    let store = shared.store.as_ref()?;
    let loaded = {
        // deepcheck:allow(lock-blocking): the store mutex serializes artifact file I/O by design; the in-memory cache tiers absorb the hot path
        let mut guard = store.lock().ok()?;
        guard.load(key)
    };
    match loaded {
        Ok(solved) => match evcap_audit::certify(scenario, &solved) {
            Ok(_) => {
                shared.metrics.store_hit();
                evcap_obs::trace::mark("store.tier", "hit");
                Some(Arc::new(solved))
            }
            Err(_) => {
                shared.metrics.store_reject();
                evcap_obs::trace::mark("store.tier", "reject");
                None
            }
        },
        Err(evcap_store::StoreError::NotFound { .. }) => {
            shared.metrics.store_miss();
            evcap_obs::trace::mark("store.tier", "miss");
            None
        }
        Err(_) => {
            shared.metrics.store_reject();
            evcap_obs::trace::mark("store.tier", "reject");
            None
        }
    }
}

/// Writes a freshly solved artifact through to the persistent store (best
/// effort: an I/O failure is not a request failure).
fn store_append(shared: &Shared, solved: &SolvedPolicy) {
    let Some(store) = shared.store.as_ref() else {
        return;
    };
    // deepcheck:allow(lock-blocking): the store mutex serializes artifact file I/O by design; appends are best-effort and off the response path
    let appended = store.lock().ok().map(|mut s| s.append(solved).is_ok());
    if appended == Some(true) {
        shared.metrics.store_append();
    }
}

/// Fetches (or computes, single-flight) the `SolvedPolicy` artifact for a
/// canonical scenario. Both endpoints' response-cache computes run through
/// here, so `/v1/solve` and every `/v1/simulate` variation of one scenario
/// share one clustering/LP solve.
///
/// With `--store` the lookup is three-tiered: hot in-memory LRU → disk
/// store (certified loads only, see [`store_load`]) → fresh solve (written
/// through to disk).
fn artifact(
    shared: &Shared,
    scenario: &evcap_spec::Scenario,
    key: &str,
) -> Result<Arc<SolvedPolicy>, ApiError> {
    let fetch = shared
        .artifact_cache
        .get_or_compute(key, shared.config.coalesce_timeout, || {
            if let Some(stored) = store_load(shared, scenario, key) {
                return Ok(stored);
            }
            let solved = handlers::solve_artifact(scenario)?;
            if shared.config.validate_artifacts {
                let report = evcap_audit::audit(scenario, &solved);
                if !report.is_clean() {
                    let named: Vec<String> = report
                        .violations()
                        .map(|c| format!("{}: {}", c.invariant, c.detail))
                        .collect();
                    // A Failed fetch is never cached, so a rejected
                    // artifact cannot poison either cache tier.
                    return Err(ApiError {
                        status: 500,
                        kind: "artifact_rejected",
                        message: format!("artifact failed certification ({})", named.join("; ")),
                    });
                }
            }
            let solved = Arc::new(solved);
            store_append(shared, &solved);
            Ok(solved)
        });
    evcap_obs::trace::mark("cache.artifact", fetch.label());
    match fetch {
        Fetch::Hit(a) | Fetch::Computed(a) | Fetch::Coalesced(a) => Ok(a),
        Fetch::Failed(e) => Err(e),
        Fetch::TimedOut => {
            shared.metrics.timeout();
            Err(ApiError {
                status: 503,
                kind: "coalesce_timeout",
                message: "timed out waiting for an in-flight solve".to_owned(),
            })
        }
    }
}

fn render_fetch(fetch: Fetch<String, ApiError>, shared: &Shared) -> Routed {
    let label = fetch.label();
    match fetch {
        Fetch::Hit(body) | Fetch::Computed(body) | Fetch::Coalesced(body) => {
            Routed::json(200, body, label)
        }
        Fetch::Failed(e) => Routed::json(e.status, e.body(), label),
        Fetch::TimedOut => {
            shared.metrics.timeout();
            let err = ApiError {
                status: 503,
                kind: "coalesce_timeout",
                message: "timed out waiting for an in-flight computation".to_owned(),
            };
            Routed::json(503, err.body(), label)
        }
    }
}
