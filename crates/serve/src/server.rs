//! The daemon: listener, worker pool, routing, and graceful shutdown.
//!
//! Architecture: the listener socket is nonblocking and shared (via
//! `try_clone`) by a fixed pool of worker threads. Each worker loops on
//! `accept`; `WouldBlock` means "no connection pending", so the worker
//! naps briefly and re-checks the shutdown flag — that poll loop is what
//! makes shutdown deterministic without platform-specific selectors.
//!
//! An accepted connection is handled to completion by one worker
//! (keep-alive requests loop in place), so peak concurrency equals the
//! pool size and everything beyond that waits in the kernel backlog.
//! Blocking reads carry a socket timeout, bounding how long a quiet or
//! trickling client can pin a worker.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use evcap_obs::{JsonObject, JsonlSink};
use evcap_spec::SolvedPolicy;

use crate::cache::{Fetch, ShardedCache};
use crate::handlers;
use crate::http::{self, Limits, ReadError, Request};
use crate::metrics::Metrics;
use crate::scenario::{ApiError, SimulateScenario, SolveScenario};

/// Everything `evcap serve` can tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads (= peak concurrent connections).
    pub threads: usize,
    /// Total cached responses per cache (solve and simulate each get one).
    pub cache_cap: usize,
    /// Lock shards per cache.
    pub shards: usize,
    /// Request framing limits.
    pub limits: Limits,
    /// Socket read timeout: bounds idle keep-alive and trickling clients.
    pub read_timeout: Duration,
    /// How long a coalesced request waits on the leader before a 503.
    pub coalesce_timeout: Duration,
    /// Largest `slots` a `/v1/simulate` request may ask for.
    pub max_slots: u64,
    /// Optional JSONL access-log path (one `request` record per request).
    pub access_log: Option<String>,
    /// Audit every freshly solved artifact against the paper's analytic
    /// invariants (`evcap-audit`) before it enters the artifact cache.
    /// A violation answers 500 and — like every compute failure — is never
    /// cached, so a fixed solver serves clean artifacts immediately.
    pub validate_artifacts: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_cap: 1024,
            shards: 8,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            coalesce_timeout: Duration::from_secs(30),
            max_slots: 2_000_000,
            access_log: None,
            validate_artifacts: false,
        }
    }
}

/// State shared by every worker.
struct Shared {
    config: ServeConfig,
    metrics: Metrics,
    solve_cache: ShardedCache<String, ApiError>,
    sim_cache: ShardedCache<String, ApiError>,
    /// Second cache tier: `SolvedPolicy` artifacts keyed by
    /// `Scenario::canonical_key()`. Response-cache misses that share a
    /// scenario (e.g. `/v1/simulate` varying only in slots/seed, or a
    /// `/v1/solve` for the same physics) share one clustering/LP solve.
    artifact_cache: ShardedCache<Arc<SolvedPolicy>, ApiError>,
    shutdown: AtomicBool,
    access_log: Option<Mutex<JsonlSink>>,
}

/// A running policy server.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

/// How long an idle worker naps between accept attempts (also the grain of
/// shutdown responsiveness).
const ACCEPT_NAP: Duration = Duration::from_millis(2);

impl Server {
    /// Binds the address and starts the worker pool. Returns as soon as the
    /// socket is listening — a client may connect immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind/clone failures and access-log creation failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let access_log = match &config.access_log {
            Some(path) => Some(Mutex::new(JsonlSink::create(path)?)),
            None => None,
        };
        let threads = config.threads.max(1);
        let shared = Arc::new(Shared {
            solve_cache: ShardedCache::new(config.cache_cap, config.shards),
            sim_cache: ShardedCache::new(config.cache_cap, config.shards),
            artifact_cache: ShardedCache::new(config.cache_cap, config.shards),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            access_log,
            config,
        });
        let workers = (0..threads)
            .map(|i| {
                let listener = listener.try_clone()?;
                let shared = Arc::clone(&shared);
                Ok(std::thread::Builder::new()
                    .name(format!("evcap-serve-{i}"))
                    .spawn(move || worker_loop(&listener, &shared))
                    .expect("spawn worker thread")) // tidy:allow(serve-unwrap): startup path: failing to spawn the pool aborts boot, no request in flight
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Server {
            shared,
            workers,
            addr,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters for the solve cache.
    pub fn solve_cache_stats(&self) -> crate::cache::StatsSnapshot {
        self.shared.solve_cache.stats()
    }

    /// Counters for the `SolvedPolicy` artifact cache.
    pub fn artifact_cache_stats(&self) -> crate::cache::StatsSnapshot {
        self.shared.artifact_cache.stats()
    }

    /// A flag that makes the server drain and stop when set; safe to hand
    /// to a signal handler loop.
    pub fn stop_flag(&self) -> StopFlag {
        StopFlag {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Requests shutdown and joins every worker. In-flight requests finish;
    /// idle workers exit within one accept nap; a worker blocked reading
    /// exits after at most the configured read timeout.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(log) = &self.shared.access_log {
            if let Ok(sink) = log.lock() {
                // Flush happens on drop of the BufWriter; nothing to do
                // beyond holding the lock so no worker is mid-write.
                drop(sink);
            }
        }
    }

    /// Whether shutdown has been requested (by [`Server::shutdown`] or a
    /// [`StopFlag`]).
    pub fn is_stopping(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A cloneable handle that can stop a [`Server`] from another thread.
pub struct StopFlag {
    shared: Arc<Shared>,
}

impl StopFlag {
    /// Requests shutdown (workers drain; the owner still calls
    /// [`Server::shutdown`] to join them).
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

fn worker_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connection();
                // Accepted sockets are blocking with a read timeout: the
                // worker parses at most one request at a time and the
                // timeout bounds how long a quiet client holds the slot.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
                handle_connection(stream, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_NAP);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (e.g. aborted connection):
                // back off briefly rather than spin.
                std::thread::sleep(ACCEPT_NAP);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let request = http::read_request(&mut reader, &shared.config.limits, || {
            http::write_continue(&mut writer)
        });
        let request = match request {
            Ok(r) => r,
            Err(ReadError::Bad { status, message }) => {
                let err = ApiError {
                    status,
                    kind: "bad_request",
                    message: message.to_owned(),
                };
                let _ =
                    http::write_response(&mut writer, status, err.body().as_bytes(), false, &[]);
                return;
            }
            // Clean close, idle timeout, or transport failure: just drop.
            Err(ReadError::Closed | ReadError::Timeout | ReadError::Io(_)) => return,
        };

        let start = Instant::now(); // tidy:allow(instant-now): access-log latency stamp
        let (status, body, cache) = route(&request, shared);
        let stopping = shared.shutdown.load(Ordering::SeqCst);
        let keep_alive = request.keep_alive && !stopping;
        let extra: &[(&str, &str)] = if cache.is_empty() {
            &[]
        } else {
            &[("x-evcap-cache", cache)]
        };
        let elapsed = start.elapsed();
        let path = request.target.split('?').next().unwrap_or("");
        shared.metrics.request(path, status, elapsed);
        if let Some(log) = &shared.access_log {
            let mut record = JsonObject::with_type("request");
            record.field_str("method", &request.method);
            record.field_str("path", path);
            record.field_u64("status", u64::from(status));
            record.field_f64("micros", elapsed.as_secs_f64() * 1e6);
            if !cache.is_empty() {
                record.field_str("cache", cache);
            }
            if let Ok(mut sink) = log.lock() {
                let _ = sink.write(record);
            }
        }
        if http::write_response(&mut writer, status, body.as_bytes(), keep_alive, extra).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// The extra-header slot for "this response never touches a cache".
const NO_CACHE: &str = "";

fn route(request: &Request, shared: &Shared) -> (u16, String, &'static str) {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let mut obj = JsonObject::with_type("health");
            obj.field_str("status", "ok");
            (200, obj.finish(), NO_CACHE)
        }
        ("GET", "/metrics") => {
            let body = shared.metrics.render(
                &shared.solve_cache.stats(),
                &shared.sim_cache.stats(),
                &shared.artifact_cache.stats(),
            );
            (200, body, NO_CACHE)
        }
        ("POST", "/v1/solve") => match SolveScenario::from_body(&request.body) {
            Err(e) => (e.status, e.body(), NO_CACHE),
            Ok(s) => {
                let key = s.cache_key();
                let fetch =
                    shared
                        .solve_cache
                        .get_or_compute(&key, shared.config.coalesce_timeout, || {
                            let t = Instant::now(); // tidy:allow(instant-now): access-log latency stamp
                            let result = artifact(shared, &s.scenario)
                                .map(|a| handlers::render_solve(&s, &a));
                            shared.metrics.solve_latency.observe(t.elapsed());
                            result
                        });
                render_fetch(fetch, shared)
            }
        },
        ("POST", "/v1/simulate") => {
            match SimulateScenario::from_body(&request.body, shared.config.max_slots) {
                Err(e) => (e.status, e.body(), NO_CACHE),
                Ok(s) => {
                    let key = s.cache_key();
                    let fetch = shared.sim_cache.get_or_compute(
                        &key,
                        shared.config.coalesce_timeout,
                        || {
                            let a = artifact(shared, &s.scenario)?;
                            handlers::simulate(&s, &a)
                        },
                    );
                    render_fetch(fetch, shared)
                }
            }
        }
        (_, "/healthz" | "/metrics" | "/v1/solve" | "/v1/simulate") => {
            let err = ApiError {
                status: 405,
                kind: "method_not_allowed",
                message: format!("`{}` is not supported on {path}", request.method),
            };
            (405, err.body(), NO_CACHE)
        }
        _ => {
            let err = ApiError {
                status: 404,
                kind: "not_found",
                message: format!("no route for {path}"),
            };
            (404, err.body(), NO_CACHE)
        }
    }
}

/// Fetches (or computes, single-flight) the `SolvedPolicy` artifact for a
/// canonical scenario. Both endpoints' response-cache computes run through
/// here, so `/v1/solve` and every `/v1/simulate` variation of one scenario
/// share one clustering/LP solve.
fn artifact(
    shared: &Shared,
    scenario: &evcap_spec::Scenario,
) -> Result<Arc<SolvedPolicy>, ApiError> {
    let key = scenario.canonical_key();
    let fetch = shared
        .artifact_cache
        .get_or_compute(&key, shared.config.coalesce_timeout, || {
            let solved = handlers::solve_artifact(scenario)?;
            if shared.config.validate_artifacts {
                let report = evcap_audit::audit(scenario, &solved);
                if !report.is_clean() {
                    let named: Vec<String> = report
                        .violations()
                        .map(|c| format!("{}: {}", c.invariant, c.detail))
                        .collect();
                    // A Failed fetch is never cached, so a rejected
                    // artifact cannot poison either cache tier.
                    return Err(ApiError {
                        status: 500,
                        kind: "artifact_rejected",
                        message: format!("artifact failed certification ({})", named.join("; ")),
                    });
                }
            }
            Ok(Arc::new(solved))
        });
    match fetch {
        Fetch::Hit(a) | Fetch::Computed(a) | Fetch::Coalesced(a) => Ok(a),
        Fetch::Failed(e) => Err(e),
        Fetch::TimedOut => {
            shared.metrics.timeout();
            Err(ApiError {
                status: 503,
                kind: "coalesce_timeout",
                message: "timed out waiting for an in-flight solve".to_owned(),
            })
        }
    }
}

fn render_fetch(fetch: Fetch<String, ApiError>, shared: &Shared) -> (u16, String, &'static str) {
    let label = fetch.label();
    match fetch {
        Fetch::Hit(body) | Fetch::Computed(body) | Fetch::Coalesced(body) => (200, body, label),
        Fetch::Failed(e) => (e.status, e.body(), label),
        Fetch::TimedOut => {
            shared.metrics.timeout();
            let err = ApiError {
                status: 503,
                kind: "coalesce_timeout",
                message: "timed out waiting for an in-flight computation".to_owned(),
            };
            (503, err.body(), label)
        }
    }
}
