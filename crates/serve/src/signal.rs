//! SIGINT/SIGTERM → an atomic flag, with no signal crate.
//!
//! The handler does the only thing that is async-signal-safe here: store a
//! relaxed atomic. `evcap serve` polls [`shutdown_requested`] from its
//! main loop and drives the worker pool's graceful drain itself.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::{Ordering, SIGNALED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        // `signal(2)` from libc — std links libc unconditionally on unix,
        // so declaring the symbol costs nothing and avoids a crate.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; `signal` itself is safe to call with a valid
        // function pointer.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs handlers for SIGINT and SIGTERM (no-op off unix).
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn shutdown_requested() -> bool {
    SIGNALED.load(Ordering::Relaxed)
}

/// Clears the flag (tests re-use the process).
pub fn reset() {
    SIGNALED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_resets() {
        reset();
        assert!(!shutdown_requested());
        SIGNALED.store(true, Ordering::Relaxed);
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn install_then_raise_sets_the_flag() {
        install();
        reset();
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: raising SIGTERM in-process invokes our handler, which
        // performs only an atomic store.
        unsafe {
            raise(15);
        }
        assert!(shutdown_requested());
        reset();
    }
}
