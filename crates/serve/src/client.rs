//! A minimal keep-alive HTTP/1.1 client for `evcap loadgen` and the tests.
//!
//! One [`Conn`] is one persistent connection: `request` writes a request
//! and parses the response off the same socket, so a loadgen worker can
//! issue thousands of requests over a single TCP session (connection
//! setup would otherwise dominate the latency being measured).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
    /// The `x-evcap-cache` header, if the server sent one.
    pub cache: Option<String>,
    /// The `x-request-id` header (the request's trace id), if sent.
    pub request_id: Option<String>,
    /// The `content-type` header, if sent.
    pub content_type: Option<String>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

impl Response {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent client connection.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    /// Connects with the given socket timeout (applied to reads and writes).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; a malformed response surfaces as
    /// `InvalidData`.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        self.request_with(method, path, body, &[])
    }

    /// As [`Conn::request`], with extra request headers (e.g.
    /// `("x-request-id", "…")` or `("accept", "text/plain")`).
    ///
    /// # Errors
    ///
    /// As [`Conn::request`].
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        headers: &[(&str, &str)],
    ) -> io::Result<Response> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: evcap\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let mut status_line = self.read_line()?;
        // Skip interim 1xx responses (e.g. `100 Continue`).
        loop {
            let code = status_line
                .split_ascii_whitespace()
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .ok_or_else(|| bad("malformed status line"))?;
            if (100..200).contains(&code) {
                // Drain the interim response's header block.
                while !self.read_line()?.is_empty() {}
                status_line = self.read_line()?;
            } else {
                break;
            }
        }
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("malformed status line"))?;

        let mut content_length = 0usize;
        let mut cache = None;
        let mut request_id = None;
        let mut content_type = None;
        let mut keep_alive = true;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad("malformed response header"));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| bad("bad content-length"))?;
                }
                "x-evcap-cache" => cache = Some(value.to_owned()),
                "x-request-id" => request_id = Some(value.to_owned()),
                "content-type" => content_type = Some(value.to_owned()),
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status,
            body,
            cache,
            request_id,
            content_type,
            keep_alive,
        })
    }
}

/// One-shot GET on a fresh connection.
///
/// # Errors
///
/// As [`Conn::request`].
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<Response> {
    Conn::connect(addr, timeout)?.request("GET", path, b"")
}

/// One-shot POST on a fresh connection.
///
/// # Errors
///
/// As [`Conn::request`].
pub fn post(addr: SocketAddr, path: &str, body: &[u8], timeout: Duration) -> io::Result<Response> {
    Conn::connect(addr, timeout)?.request("POST", path, body)
}
