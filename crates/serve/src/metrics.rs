//! Server-wide counters and latency, rendered for `GET /metrics`.
//!
//! Everything is atomics plus two [`LatencyHistogram`]s, so the hot path
//! never takes a lock to record a request. `/metrics` renders one flat JSON
//! object (the same JSONL dialect every evcap tool emits), which the CI
//! smoke test and the e2e suite parse with [`evcap_obs::parse_line`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use evcap_obs::{JsonObject, LatencyHistogram};
use evcap_spec::Objective;

use crate::cache::{ShardSnapshot, StatsSnapshot};
use crate::prometheus;

/// A point-in-time view of the persistent artifact store (disk tier):
/// size gauges read under the store lock at render time. The hit/miss/
/// reject/append *counters* live in [`Metrics`] so the request path never
/// touches the lock just to count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Whether `--store` is configured at all.
    pub enabled: bool,
    /// Distinct scenario keys indexed on disk.
    pub entries: u64,
    /// Logical size of the record log in bytes.
    pub bytes: u64,
}

/// Atomic request/response counters plus latency histograms.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    requests: AtomicU64,
    solve_requests: AtomicU64,
    simulate_requests: AtomicU64,
    health_requests: AtomicU64,
    metrics_requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    connections: AtomicU64,
    timeouts: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_rejects: AtomicU64,
    store_appends: AtomicU64,
    /// Scenario-bearing requests by solve objective, indexed by
    /// [`Objective::index`]. Mixed-objective traffic shares every other
    /// counter (same endpoints, same caches), so this is the one place it
    /// stays distinguishable.
    objective_requests: [AtomicU64; 3],
    /// All requests, wire-to-wire.
    pub latency: LatencyHistogram,
    /// Cache-miss solves only (the compute itself).
    pub solve_latency: LatencyHistogram,
}

impl Metrics {
    /// Fresh metrics; `started` anchors the uptime field.
    pub fn new() -> Self {
        Self {
            started: Instant::now(), // tidy:allow(instant-now): uptime epoch for the /metrics endpoint
            requests: AtomicU64::new(0),
            solve_requests: AtomicU64::new(0),
            simulate_requests: AtomicU64::new(0),
            health_requests: AtomicU64::new(0),
            metrics_requests: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_rejects: AtomicU64::new(0),
            store_appends: AtomicU64::new(0),
            objective_requests: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            latency: LatencyHistogram::new(),
            solve_latency: LatencyHistogram::new(),
        }
    }

    /// Records one disk-tier load served after passing certification.
    pub fn store_hit(&self) {
        self.store_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one disk-tier lookup that found no record.
    pub fn store_miss(&self) {
        self.store_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one stored artifact refused (checksum, rehydration, or
    /// certification failure) and re-solved fresh.
    pub fn store_reject(&self) {
        self.store_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fresh solve written through to the disk tier.
    pub fn store_append(&self) {
        self.store_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one scenario-bearing request (`/v1/solve` or
    /// `/v1/simulate`) under its solve objective.
    pub fn objective_request(&self, objective: Objective) {
        // deepcheck:allow(panic-path): Objective::index() is a dense enum index; the array is sized to match
        self.objective_requests[objective.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one accepted connection.
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalescing-wait timeout (a 503 was served).
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one routed request and its response status.
    pub fn request(&self, path: &str, status: u16, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let endpoint = match path {
            "/v1/solve" => Some(&self.solve_requests),
            "/v1/simulate" => Some(&self.simulate_requests),
            "/healthz" => Some(&self.health_requests),
            "/metrics" => Some(&self.metrics_requests),
            _ => None,
        };
        if let Some(counter) = endpoint {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency.observe(elapsed);
    }

    /// Renders the `/metrics` body given each cache tier's counters: the
    /// two response caches, the `SolvedPolicy` artifact cache, and the
    /// persistent store tier's size gauges.
    pub fn render(
        &self,
        solve_cache: &StatsSnapshot,
        sim_cache: &StatsSnapshot,
        artifact_cache: &StatsSnapshot,
        store: &StoreSnapshot,
    ) -> String {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut obj = JsonObject::with_type("metrics");
        obj.field_f64("uptime_seconds", self.started.elapsed().as_secs_f64());
        obj.field_u64("connections", get(&self.connections));
        obj.field_u64("requests", get(&self.requests));
        obj.field_u64("solve_requests", get(&self.solve_requests));
        obj.field_u64("simulate_requests", get(&self.simulate_requests));
        obj.field_u64("health_requests", get(&self.health_requests));
        obj.field_u64("metrics_requests", get(&self.metrics_requests));
        obj.field_u64("responses_2xx", get(&self.responses_2xx));
        obj.field_u64("responses_4xx", get(&self.responses_4xx));
        obj.field_u64("responses_5xx", get(&self.responses_5xx));
        obj.field_u64("coalesce_timeouts", get(&self.timeouts));
        for (objective, counter) in Objective::ALL.iter().zip(&self.objective_requests) {
            let field = format!("objective_requests_{}", objective.name().replace('-', "_"));
            obj.field_u64(&field, get(counter));
        }

        obj.field_u64("solve_cache_hits", solve_cache.hits);
        obj.field_u64("solve_cache_misses", solve_cache.misses);
        obj.field_u64("solve_cache_coalesced", solve_cache.coalesced);
        obj.field_u64("solve_cache_evictions", solve_cache.evictions);
        obj.field_u64("solve_cache_failures", solve_cache.failures);
        obj.field_u64("sim_cache_hits", sim_cache.hits);
        obj.field_u64("sim_cache_misses", sim_cache.misses);
        obj.field_u64("sim_cache_coalesced", sim_cache.coalesced);
        obj.field_u64("sim_cache_evictions", sim_cache.evictions);
        obj.field_u64("artifact_cache_hits", artifact_cache.hits);
        obj.field_u64("artifact_cache_misses", artifact_cache.misses);
        obj.field_u64("artifact_cache_coalesced", artifact_cache.coalesced);
        obj.field_u64("artifact_cache_evictions", artifact_cache.evictions);
        obj.field_u64("artifact_cache_failures", artifact_cache.failures);

        obj.field_bool("store_enabled", store.enabled);
        obj.field_u64("store_hits", get(&self.store_hits));
        obj.field_u64("store_misses", get(&self.store_misses));
        obj.field_u64("store_rejects", get(&self.store_rejects));
        obj.field_u64("store_appends", get(&self.store_appends));
        obj.field_u64("store_entries", store.entries);
        obj.field_u64("store_bytes", store.bytes);

        obj.field_u64("latency_count", self.latency.count());
        obj.field_f64("latency_mean_us", self.latency.mean_ns() / 1e3);
        obj.field_f64(
            "latency_p50_us",
            self.latency.quantile_ns(0.50) as f64 / 1e3,
        );
        obj.field_f64(
            "latency_p99_us",
            self.latency.quantile_ns(0.99) as f64 / 1e3,
        );
        obj.field_u64("solve_compute_count", self.solve_latency.count());
        obj.field_f64("solve_compute_mean_us", self.solve_latency.mean_ns() / 1e3);
        obj.finish()
    }

    /// Renders the Prometheus text exposition (version 0.0.4) of the same
    /// counters, plus per-shard gauges for every cache tier. `tiers` pairs
    /// a tier name (`solve`, `sim`, `artifact`) with its shard snapshots.
    pub fn render_prometheus(
        &self,
        tiers: &[(&str, Vec<ShardSnapshot>)],
        store: &StoreSnapshot,
    ) -> String {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        let mut out = String::with_capacity(4096);

        prometheus::type_line(&mut out, "evcap_uptime_seconds", "gauge");
        prometheus::sample(
            &mut out,
            "evcap_uptime_seconds",
            self.started.elapsed().as_secs_f64(),
        );
        prometheus::type_line(&mut out, "evcap_connections_total", "counter");
        prometheus::sample(&mut out, "evcap_connections_total", get(&self.connections));
        prometheus::type_line(&mut out, "evcap_requests_total", "counter");
        prometheus::sample(&mut out, "evcap_requests_total", get(&self.requests));
        prometheus::type_line(&mut out, "evcap_endpoint_requests_total", "counter");
        for (endpoint, counter) in [
            ("solve", &self.solve_requests),
            ("simulate", &self.simulate_requests),
            ("healthz", &self.health_requests),
            ("metrics", &self.metrics_requests),
        ] {
            prometheus::sample_with(
                &mut out,
                "evcap_endpoint_requests_total",
                &[("endpoint", endpoint)],
                get(counter),
            );
        }
        prometheus::type_line(&mut out, "evcap_responses_total", "counter");
        for (class, counter) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            prometheus::sample_with(
                &mut out,
                "evcap_responses_total",
                &[("class", class)],
                get(counter),
            );
        }
        prometheus::type_line(&mut out, "evcap_coalesce_timeouts_total", "counter");
        prometheus::sample(
            &mut out,
            "evcap_coalesce_timeouts_total",
            get(&self.timeouts),
        );
        prometheus::type_line(&mut out, "evcap_objective_requests_total", "counter");
        for (objective, counter) in Objective::ALL.iter().zip(&self.objective_requests) {
            prometheus::sample_with(
                &mut out,
                "evcap_objective_requests_total",
                &[("objective", objective.name())],
                get(counter),
            );
        }

        for (metric, kind, read) in CACHE_SERIES {
            prometheus::type_line(&mut out, metric, kind);
            for (tier, shards) in tiers {
                for (index, shard) in shards.iter().enumerate() {
                    let shard_label = format!("{index}");
                    prometheus::sample_with(
                        &mut out,
                        metric,
                        &[("cache", tier), ("shard", shard_label.as_str())],
                        read(shard),
                    );
                }
            }
        }

        for (metric, counter) in [
            ("evcap_store_hits_total", &self.store_hits),
            ("evcap_store_misses_total", &self.store_misses),
            ("evcap_store_rejects_total", &self.store_rejects),
            ("evcap_store_appends_total", &self.store_appends),
        ] {
            prometheus::type_line(&mut out, metric, "counter");
            prometheus::sample(&mut out, metric, get(counter));
        }
        prometheus::type_line(&mut out, "evcap_store_enabled", "gauge");
        prometheus::sample(
            &mut out,
            "evcap_store_enabled",
            if store.enabled { 1.0 } else { 0.0 },
        );
        prometheus::type_line(&mut out, "evcap_store_entries", "gauge");
        prometheus::sample(&mut out, "evcap_store_entries", store.entries as f64);
        prometheus::type_line(&mut out, "evcap_store_bytes", "gauge");
        prometheus::sample(&mut out, "evcap_store_bytes", store.bytes as f64);

        prometheus::histogram(
            &mut out,
            "evcap_request_latency_seconds",
            &self.latency.cumulative_buckets(),
            self.latency.total_ns(),
            self.latency.count(),
        );
        prometheus::histogram(
            &mut out,
            "evcap_solve_compute_seconds",
            &self.solve_latency.cumulative_buckets(),
            self.solve_latency.total_ns(),
            self.solve_latency.count(),
        );
        out
    }
}

/// Reads one exported value out of a [`ShardSnapshot`].
type ShardField = fn(&ShardSnapshot) -> f64;

/// The per-shard cache series: metric name, Prometheus type, and the
/// field each reads from a [`ShardSnapshot`].
const CACHE_SERIES: [(&str, &str, ShardField); 6] = [
    ("evcap_cache_hits_total", "counter", |s| s.stats.hits as f64),
    ("evcap_cache_misses_total", "counter", |s| {
        s.stats.misses as f64
    }),
    ("evcap_cache_coalesced_total", "counter", |s| {
        s.stats.coalesced as f64
    }),
    ("evcap_cache_evictions_total", "counter", |s| {
        s.stats.evictions as f64
    }),
    ("evcap_cache_occupancy", "gauge", |s| s.occupancy as f64),
    ("evcap_cache_capacity", "gauge", |s| s.capacity as f64),
];

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_obs::{parse_line, JsonValue};

    #[test]
    fn render_round_trips_and_counts() {
        let m = Metrics::new();
        m.connection();
        m.request("/v1/solve", 200, Duration::from_micros(250));
        m.request("/v1/solve", 400, Duration::from_micros(50));
        m.request("/healthz", 200, Duration::from_micros(10));
        m.request("/nope", 404, Duration::from_micros(10));
        m.store_hit();
        m.store_miss();
        m.store_reject();
        m.store_reject();
        m.store_append();
        m.objective_request(Objective::Qom);
        m.objective_request(Objective::Qom);
        m.objective_request(Objective::AoiMean);
        let empty = StatsSnapshot::default();
        let store = StoreSnapshot {
            enabled: true,
            entries: 3,
            bytes: 4096,
        };
        let body = m.render(&empty, &empty, &empty, &store);
        let v = parse_line(&body).unwrap();
        let f = |k: &str| v.get(k).and_then(JsonValue::as_f64).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("metrics"));
        assert_eq!(f("requests"), 4.0);
        assert_eq!(f("solve_requests"), 2.0);
        assert_eq!(f("health_requests"), 1.0);
        assert_eq!(f("responses_2xx"), 2.0);
        assert_eq!(f("responses_4xx"), 2.0);
        assert_eq!(f("connections"), 1.0);
        assert_eq!(f("latency_count"), 4.0);
        assert!(f("latency_p99_us") > 0.0);
        assert_eq!(f("store_hits"), 1.0);
        assert_eq!(f("store_misses"), 1.0);
        assert_eq!(f("store_rejects"), 2.0);
        assert_eq!(f("store_appends"), 1.0);
        assert_eq!(f("store_entries"), 3.0);
        assert_eq!(f("store_bytes"), 4096.0);
        assert_eq!(f("objective_requests_qom"), 2.0);
        assert_eq!(f("objective_requests_aoi_mean"), 1.0);
        assert_eq!(f("objective_requests_aoi_peak"), 0.0);
    }

    #[test]
    fn prometheus_render_round_trips_and_matches_json() {
        let m = Metrics::new();
        m.connection();
        m.request("/v1/solve", 200, Duration::from_micros(250));
        m.request("/healthz", 200, Duration::from_micros(10));
        let shard = ShardSnapshot {
            stats: StatsSnapshot {
                hits: 3,
                misses: 1,
                ..StatsSnapshot::default()
            },
            occupancy: 1,
            capacity: 16,
        };
        let tiers = vec![
            ("solve", vec![shard, ShardSnapshot::default()]),
            ("sim", vec![ShardSnapshot::default(); 2]),
        ];
        m.store_hit();
        m.store_reject();
        m.objective_request(Objective::AoiPeak);
        let store = StoreSnapshot {
            enabled: true,
            entries: 5,
            bytes: 2048,
        };
        let text = m.render_prometheus(&tiers, &store);
        let samples = prometheus::parse(&text).expect("renderer emits valid exposition");
        let f = |name: &str, labels: &[(&str, &str)]| {
            prometheus::find(&samples, name, labels).expect(name)
        };
        assert_eq!(f("evcap_requests_total", &[]), 2.0);
        assert_eq!(
            f("evcap_endpoint_requests_total", &[("endpoint", "solve")]),
            1.0
        );
        assert_eq!(f("evcap_responses_total", &[("class", "2xx")]), 2.0);
        assert_eq!(
            f(
                "evcap_cache_hits_total",
                &[("cache", "solve"), ("shard", "0")]
            ),
            3.0
        );
        assert_eq!(
            f(
                "evcap_cache_occupancy",
                &[("cache", "solve"), ("shard", "0")]
            ),
            1.0
        );
        assert_eq!(
            f("evcap_cache_capacity", &[("cache", "sim"), ("shard", "1")]),
            0.0
        );
        assert_eq!(f("evcap_request_latency_seconds_count", &[]), 2.0);
        assert_eq!(
            f("evcap_request_latency_seconds_bucket", &[("le", "+Inf")]),
            2.0
        );
        assert_eq!(
            f(
                "evcap_objective_requests_total",
                &[("objective", "aoi-peak")]
            ),
            1.0
        );
        assert_eq!(
            f("evcap_objective_requests_total", &[("objective", "qom")]),
            0.0
        );
        assert_eq!(f("evcap_store_hits_total", &[]), 1.0);
        assert_eq!(f("evcap_store_rejects_total", &[]), 1.0);
        assert_eq!(f("evcap_store_enabled", &[]), 1.0);
        assert_eq!(f("evcap_store_entries", &[]), 5.0);
        assert_eq!(f("evcap_store_bytes", &[]), 2048.0);
        // Consistency with the JSON body (same atomics, same instant).
        let empty = StatsSnapshot::default();
        let json = parse_line(&m.render(&empty, &empty, &empty, &store)).unwrap();
        assert_eq!(
            json.get("requests").and_then(JsonValue::as_f64),
            Some(f("evcap_requests_total", &[]))
        );
    }
}
