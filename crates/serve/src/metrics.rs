//! Server-wide counters and latency, rendered for `GET /metrics`.
//!
//! Everything is atomics plus two [`LatencyHistogram`]s, so the hot path
//! never takes a lock to record a request. `/metrics` renders one flat JSON
//! object (the same JSONL dialect every evcap tool emits), which the CI
//! smoke test and the e2e suite parse with [`evcap_obs::parse_line`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use evcap_obs::{JsonObject, LatencyHistogram};

use crate::cache::StatsSnapshot;

/// Atomic request/response counters plus latency histograms.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    requests: AtomicU64,
    solve_requests: AtomicU64,
    simulate_requests: AtomicU64,
    health_requests: AtomicU64,
    metrics_requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    connections: AtomicU64,
    timeouts: AtomicU64,
    /// All requests, wire-to-wire.
    pub latency: LatencyHistogram,
    /// Cache-miss solves only (the compute itself).
    pub solve_latency: LatencyHistogram,
}

impl Metrics {
    /// Fresh metrics; `started` anchors the uptime field.
    pub fn new() -> Self {
        Self {
            started: Instant::now(), // tidy:allow(instant-now): uptime epoch for the /metrics endpoint
            requests: AtomicU64::new(0),
            solve_requests: AtomicU64::new(0),
            simulate_requests: AtomicU64::new(0),
            health_requests: AtomicU64::new(0),
            metrics_requests: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            solve_latency: LatencyHistogram::new(),
        }
    }

    /// Records one accepted connection.
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalescing-wait timeout (a 503 was served).
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one routed request and its response status.
    pub fn request(&self, path: &str, status: u16, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let endpoint = match path {
            "/v1/solve" => Some(&self.solve_requests),
            "/v1/simulate" => Some(&self.simulate_requests),
            "/healthz" => Some(&self.health_requests),
            "/metrics" => Some(&self.metrics_requests),
            _ => None,
        };
        if let Some(counter) = endpoint {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency.observe(elapsed);
    }

    /// Renders the `/metrics` body given each cache tier's counters: the
    /// two response caches plus the `SolvedPolicy` artifact cache.
    pub fn render(
        &self,
        solve_cache: &StatsSnapshot,
        sim_cache: &StatsSnapshot,
        artifact_cache: &StatsSnapshot,
    ) -> String {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut obj = JsonObject::with_type("metrics");
        obj.field_f64("uptime_seconds", self.started.elapsed().as_secs_f64());
        obj.field_u64("connections", get(&self.connections));
        obj.field_u64("requests", get(&self.requests));
        obj.field_u64("solve_requests", get(&self.solve_requests));
        obj.field_u64("simulate_requests", get(&self.simulate_requests));
        obj.field_u64("health_requests", get(&self.health_requests));
        obj.field_u64("metrics_requests", get(&self.metrics_requests));
        obj.field_u64("responses_2xx", get(&self.responses_2xx));
        obj.field_u64("responses_4xx", get(&self.responses_4xx));
        obj.field_u64("responses_5xx", get(&self.responses_5xx));
        obj.field_u64("coalesce_timeouts", get(&self.timeouts));

        obj.field_u64("solve_cache_hits", solve_cache.hits);
        obj.field_u64("solve_cache_misses", solve_cache.misses);
        obj.field_u64("solve_cache_coalesced", solve_cache.coalesced);
        obj.field_u64("solve_cache_evictions", solve_cache.evictions);
        obj.field_u64("solve_cache_failures", solve_cache.failures);
        obj.field_u64("sim_cache_hits", sim_cache.hits);
        obj.field_u64("sim_cache_misses", sim_cache.misses);
        obj.field_u64("sim_cache_coalesced", sim_cache.coalesced);
        obj.field_u64("sim_cache_evictions", sim_cache.evictions);
        obj.field_u64("artifact_cache_hits", artifact_cache.hits);
        obj.field_u64("artifact_cache_misses", artifact_cache.misses);
        obj.field_u64("artifact_cache_coalesced", artifact_cache.coalesced);
        obj.field_u64("artifact_cache_evictions", artifact_cache.evictions);
        obj.field_u64("artifact_cache_failures", artifact_cache.failures);

        obj.field_u64("latency_count", self.latency.count());
        obj.field_f64("latency_mean_us", self.latency.mean_ns() / 1e3);
        obj.field_f64(
            "latency_p50_us",
            self.latency.quantile_ns(0.50) as f64 / 1e3,
        );
        obj.field_f64(
            "latency_p99_us",
            self.latency.quantile_ns(0.99) as f64 / 1e3,
        );
        obj.field_u64("solve_compute_count", self.solve_latency.count());
        obj.field_f64("solve_compute_mean_us", self.solve_latency.mean_ns() / 1e3);
        obj.finish()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_obs::{parse_line, JsonValue};

    #[test]
    fn render_round_trips_and_counts() {
        let m = Metrics::new();
        m.connection();
        m.request("/v1/solve", 200, Duration::from_micros(250));
        m.request("/v1/solve", 400, Duration::from_micros(50));
        m.request("/healthz", 200, Duration::from_micros(10));
        m.request("/nope", 404, Duration::from_micros(10));
        let empty = StatsSnapshot::default();
        let body = m.render(&empty, &empty, &empty);
        let v = parse_line(&body).unwrap();
        let f = |k: &str| v.get(k).and_then(JsonValue::as_f64).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("metrics"));
        assert_eq!(f("requests"), 4.0);
        assert_eq!(f("solve_requests"), 2.0);
        assert_eq!(f("health_requests"), 1.0);
        assert_eq!(f("responses_2xx"), 2.0);
        assert_eq!(f("responses_4xx"), 2.0);
        assert_eq!(f("connections"), 1.0);
        assert_eq!(f("latency_count"), 4.0);
        assert!(f("latency_p99_us") > 0.0);
    }
}
