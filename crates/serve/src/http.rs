//! Minimal HTTP/1.1 framing on `std` only.
//!
//! Parses exactly what the policy API needs — request line, a bounded set
//! of headers, an optional `Content-Length` body — and refuses everything
//! that could wedge a worker: over-long lines (431), over-long bodies
//! (413), chunked uploads (411), and unknown versions (505). Connections
//! are keep-alive by default (HTTP/1.1 semantics); `Connection: close` and
//! HTTP/1.0 opt out.

use std::io::{self, BufRead, Write};

/// Byte budgets a client must stay within.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request/header line (bytes, CRLF excluded).
    pub max_line: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted body (bytes).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_line: 8 * 1024,
            max_headers: 64,
            max_body: 64 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target verbatim (path + optional query).
    pub target: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// The `X-Request-Id` header, sanitized (see [`sanitize_request_id`]).
    pub request_id: Option<String>,
    /// The `Accept` header verbatim, if sent.
    pub accept: Option<String>,
}

/// Maximum accepted length of an external request id.
pub const MAX_REQUEST_ID: usize = 64;

/// Sanitizes a client-supplied request id: keeps `[A-Za-z0-9._-]`,
/// replaces anything else with `-`, truncates to [`MAX_REQUEST_ID`].
/// Returns `None` for an empty result.
pub fn sanitize_request_id(raw: &str) -> Option<String> {
    let cleaned: String = raw
        .chars()
        .take(MAX_REQUEST_ID)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.chars().all(|c| c == '-') {
        None
    } else {
        Some(cleaned)
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The socket read timed out (idle or trickling client).
    Timeout,
    /// Transport failure.
    Io(io::Error),
    /// Protocol violation; the server should answer `status` and close.
    Bad {
        /// HTTP status to respond with.
        status: u16,
        /// Human-readable reason, included in the error body.
        message: &'static str,
    },
}

impl ReadError {
    fn bad(status: u16, message: &'static str) -> Self {
        ReadError::Bad { status, message }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::Timeout,
            io::ErrorKind::UnexpectedEof => ReadError::Closed,
            _ => ReadError::Io(e),
        }
    }
}

/// Reads one line (LF-terminated, CR stripped) enforcing `max` bytes.
/// Returns `None` on clean EOF before any byte.
fn read_line_limited(r: &mut impl BufRead, max: usize) -> Result<Option<String>, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match r.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        if available.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(ReadError::Closed);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                line.extend_from_slice(&available[..i]); // deepcheck:allow(panic-path): `i` is a position into `available`, in bounds
                r.consume(i + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if line.len() > max {
                    return Err(ReadError::bad(431, "header line too long"));
                }
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| ReadError::bad(400, "header line is not UTF-8"));
            }
            None => {
                line.extend_from_slice(available);
                let n = available.len();
                r.consume(n);
                if line.len() > max {
                    return Err(ReadError::bad(431, "header line too long"));
                }
            }
        }
    }
}

/// Reads and parses one request. `on_continue` is invoked (once) if the
/// client sent `Expect: 100-continue`, before the body is read — the caller
/// writes the interim response there.
///
/// # Errors
///
/// [`ReadError::Closed`] on clean EOF between requests; [`ReadError::Bad`]
/// for protocol violations the caller should answer and close on.
pub fn read_request<R: BufRead>(
    r: &mut R,
    limits: &Limits,
    mut on_continue: impl FnMut() -> io::Result<()>,
) -> Result<Request, ReadError> {
    let Some(request_line) = read_line_limited(r, limits.max_line)? else {
        return Err(ReadError::Closed);
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::bad(400, "malformed request line"));
    };
    if parts.next().is_some() {
        return Err(ReadError::bad(400, "malformed request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ReadError::bad(505, "unsupported HTTP version")),
    };

    let mut content_length: usize = 0;
    let mut keep_alive = http11;
    let mut expect_continue = false;
    let mut request_id = None;
    let mut accept = None;
    let mut headers = 0usize;
    loop {
        let Some(line) = read_line_limited(r, limits.max_line)? else {
            return Err(ReadError::Closed);
        };
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > limits.max_headers {
            return Err(ReadError::bad(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::bad(400, "malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| ReadError::bad(400, "invalid content-length"))?;
                if n > limits.max_body {
                    return Err(ReadError::bad(413, "request body too large"));
                }
                content_length = n;
            }
            "transfer-encoding" => {
                // Chunked uploads are refused rather than parsed: a length
                // is required so the body budget is enforceable up front.
                return Err(ReadError::bad(411, "length required (no chunked bodies)"));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" if value.eq_ignore_ascii_case("100-continue") => {
                expect_continue = true;
            }
            "x-request-id" => {
                request_id = sanitize_request_id(value);
            }
            "accept" => {
                accept = Some(value.to_owned());
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        if expect_continue {
            on_continue().map_err(ReadError::from)?;
        }
        r.read_exact(&mut body).map_err(ReadError::from)?;
    }
    Ok(Request {
        method: method.to_owned(),
        target: target.to_owned(),
        keep_alive,
        body,
        request_id,
        accept,
    })
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one complete response (status, headers, body).
///
/// The content type defaults to `application/json`; an extra header named
/// `content-type` (any case) replaces the default instead of duplicating
/// it.
///
/// # Errors
///
/// Propagates the underlying socket write failure.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    // Head and body go out in one buffer — a single write(2) per
    // response instead of two; the syscall saved dwarfs the memcpy.
    let mut out = Vec::with_capacity(192 + body.len());
    let _ = write!(out, "HTTP/1.1 {status} {}\r\n", reason(status));
    if !extra_headers
        .iter()
        .any(|(name, _)| name.eq_ignore_ascii_case("content-type"))
    {
        out.extend_from_slice(b"content-type: application/json\r\n");
    }
    let _ = write!(
        out,
        "content-length: {}\r\nconnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    w.write_all(&out)?;
    w.flush()
}

/// Writes the `100 Continue` interim response.
///
/// # Errors
///
/// Propagates the underlying socket write failure.
pub fn write_continue(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, ReadError> {
        parse_limited(text, &Limits::default())
    }

    fn parse_limited(text: &str, limits: &Limits) -> Result<Request, ReadError> {
        let mut r = BufReader::new(text.as_bytes());
        read_request(&mut r, limits, || Ok(()))
    }

    #[test]
    fn parses_get_and_post() {
        let req = parse("GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());

        let req = parse(
            "POST /v1/solve HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\n{\"a\"",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
        assert!(!req.keep_alive);
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn bad_request_lines_are_rejected() {
        for text in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse(text), Err(ReadError::Bad { status: 400, .. })),
                "{text:?}"
            );
        }
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(ReadError::Bad { status: 505, .. })
        ));
    }

    #[test]
    fn oversized_inputs_are_bounded() {
        let limits = Limits {
            max_line: 64,
            max_headers: 2,
            max_body: 8,
        };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(
            parse_limited(&long_line, &limits),
            Err(ReadError::Bad { status: 431, .. })
        ));
        let many_headers = "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert!(matches!(
            parse_limited(many_headers, &limits),
            Err(ReadError::Bad { status: 431, .. })
        ));
        let big_body = "POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n123456789";
        assert!(matches!(
            parse_limited(big_body, &limits),
            Err(ReadError::Bad { status: 413, .. })
        ));
        let chunked = "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert!(matches!(
            parse_limited(chunked, &limits),
            Err(ReadError::Bad { status: 411, .. })
        ));
    }

    #[test]
    fn truncated_body_is_a_close() {
        let text = "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        assert!(matches!(parse(text), Err(ReadError::Closed)));
    }

    #[test]
    fn expect_continue_invokes_callback_before_body() {
        let text = "POST / HTTP/1.1\r\ncontent-length: 2\r\nexpect: 100-continue\r\n\r\nok";
        let mut r = BufReader::new(text.as_bytes());
        let mut fired = false;
        let req = read_request(&mut r, &Limits::default(), || {
            fired = true;
            Ok(())
        })
        .unwrap();
        assert!(fired);
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn response_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{}", true, &[("x-evcap-cache", "hit")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-evcap-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 404, b"{}", false, &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }

    #[test]
    fn crlf_and_bare_lf_both_parse() {
        let req = parse("GET / HTTP/1.1\nhost: x\n\n").unwrap();
        assert_eq!(req.target, "/");
    }

    #[test]
    fn request_id_and_accept_are_captured() {
        let req =
            parse("GET / HTTP/1.1\r\nX-Request-Id: abc-123\r\nAccept: text/plain\r\n\r\n").unwrap();
        assert_eq!(req.request_id.as_deref(), Some("abc-123"));
        assert_eq!(req.accept.as_deref(), Some("text/plain"));
        let req = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.request_id, None);
        assert_eq!(req.accept, None);
    }

    #[test]
    fn request_ids_are_sanitized() {
        assert_eq!(sanitize_request_id("ok_id-1.2"), Some("ok_id-1.2".into()));
        assert_eq!(sanitize_request_id("evil\"id{}"), Some("evil-id--".into()));
        assert_eq!(sanitize_request_id(""), None);
        assert_eq!(sanitize_request_id("///"), None);
        let long = "x".repeat(200);
        assert_eq!(sanitize_request_id(&long).map(|s| s.len()), Some(64));
    }

    #[test]
    fn content_type_header_overrides_the_default() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            b"ok",
            true,
            &[("Content-Type", "text/plain; version=0.0.4")],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(!text.contains("application/json"));
    }
}
