//! Prometheus text exposition: rendering helpers and a mini-parser.
//!
//! The renderer side lives in [`crate::metrics::Metrics::render_prometheus`]
//! (it needs the private counters); this module owns the shared formatting
//! primitives — label escaping, `le` bucket formatting — and a parser for
//! the text format (version 0.0.4) that the e2e tests and the smoke
//! tooling use to validate scrapes. The parser accepts exactly the subset
//! the renderer emits plus comments: `name{label="v",...} value`, one
//! sample per line, no timestamps.

use std::fmt::Write as _;

/// The content type of the text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// One parsed sample: metric name, label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`evcap_requests_total`).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

impl Sample {
    /// The value of a label, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Escapes a label value per the exposition format.
pub(crate) fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Appends `# TYPE` metadata for a metric.
pub(crate) fn type_line(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one unlabelled sample.
pub(crate) fn sample(out: &mut String, name: &str, value: f64) {
    let _ = writeln!(out, "{name} {}", fmt_value(value));
}

/// Appends one labelled sample; `labels` are raw `(name, value)` pairs
/// (values are escaped here).
pub(crate) fn sample_with(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    let _ = write!(out, "{name}{{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    let _ = writeln!(out, "}} {}", fmt_value(value));
}

/// Renders a full histogram (cumulative `_bucket` series, `_sum`,
/// `_count`) from nanosecond buckets, in seconds.
pub(crate) fn histogram(
    out: &mut String,
    name: &str,
    buckets_ns: &[(u64, u64)],
    sum_ns: u64,
    count: u64,
) {
    type_line(out, name, "histogram");
    for &(upper_ns, cumulative) in buckets_ns {
        if upper_ns == u64::MAX {
            continue; // folded into +Inf below
        }
        let le = format!("{}", upper_ns as f64 / 1e9);
        sample_with(
            out,
            &format!("{name}_bucket"),
            &[("le", le.as_str())],
            cumulative as f64,
        );
    }
    sample_with(
        out,
        &format!("{name}_bucket"),
        &[("le", "+Inf")],
        count as f64,
    );
    sample(out, &format!("{name}_sum"), sum_ns as f64 / 1e9);
    sample(out, &format!("{name}_count"), count as f64);
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn is_name_char(c: char, first: bool) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
}

/// Parses one exposition document into samples (comments skipped).
///
/// # Errors
///
/// Returns a description naming the offending line on any malformed
/// sample.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}: `{line}`", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let mut chars = line.char_indices().peekable();
    let mut name_end = 0;
    let mut first = true;
    for (i, c) in chars.by_ref() {
        if is_name_char(c, first) {
            name_end = i + c.len_utf8();
            first = false;
        } else {
            break;
        }
    }
    if name_end == 0 {
        return Err("missing metric name".to_owned());
    }
    let name = line[..name_end].to_owned();
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        parse_labels(body)?
    } else {
        (Vec::new(), rest)
    };
    let value_text = rest.trim();
    if value_text.is_empty() {
        return Err("missing value".to_owned());
    }
    if value_text.split_ascii_whitespace().count() > 1 {
        return Err("unexpected trailing fields (timestamps unsupported)".to_owned());
    }
    let value = match value_text {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse()
            .map_err(|_| format!("invalid value `{other}`"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

type Labels = Vec<(String, String)>;

/// Parses `k="v",...}` (the opening brace already consumed); returns the
/// labels and the text after the closing brace.
fn parse_labels(body: &str) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    let mut rest = body.trim_start();
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without `=`".to_owned())?;
        let key = rest[..eq].trim().to_owned();
        if key.is_empty()
            || !key
                .chars()
                .enumerate()
                .all(|(i, c)| is_name_char(c, i == 0))
        {
            return Err(format!("invalid label name `{key}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| "label value must be quoted".to_owned())?;
        let mut value = String::new();
        let mut bytes = rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = bytes.next() {
            match c {
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                '\\' => match bytes.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err("bad escape in label value".to_owned()),
                },
                c => value.push(c),
            }
        }
        let end = consumed.ok_or_else(|| "unterminated label value".to_owned())?;
        labels.push((key, value));
        rest = rest[end..].trim_start();
        if let Some(after_comma) = rest.strip_prefix(',') {
            rest = after_comma.trim_start();
        }
    }
}

/// Finds the value of a sample by name and a label subset (every pair in
/// `labels` must match; extra labels on the sample are allowed).
pub fn find(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_samples() {
        let mut out = String::new();
        type_line(&mut out, "evcap_requests_total", "counter");
        sample(&mut out, "evcap_requests_total", 42.0);
        sample_with(
            &mut out,
            "evcap_cache_hits_total",
            &[("cache", "solve"), ("shard", "0")],
            7.0,
        );
        sample_with(&mut out, "evcap_weird", &[("v", "a\"b\\c\nd")], 1.5);
        let samples = parse(&out).expect("round trip");
        assert_eq!(samples.len(), 3);
        assert_eq!(find(&samples, "evcap_requests_total", &[]), Some(42.0));
        assert_eq!(
            find(
                &samples,
                "evcap_cache_hits_total",
                &[("cache", "solve"), ("shard", "0")]
            ),
            Some(7.0)
        );
        assert_eq!(samples[2].label("v"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn histogram_is_cumulative_with_inf_terminal() {
        let mut out = String::new();
        histogram(
            &mut out,
            "evcap_request_latency_seconds",
            &[(1023, 2), (2047, 5)],
            12_000,
            6,
        );
        let samples = parse(&out).expect("valid");
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "evcap_request_latency_seconds_bucket")
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets.last().and_then(|s| s.label("le")), Some("+Inf"));
        assert_eq!(buckets.last().map(|s| s.value), Some(6.0));
        assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
        assert_eq!(
            find(&samples, "evcap_request_latency_seconds_sum", &[]),
            Some(12e-6)
        );
        assert_eq!(
            find(&samples, "evcap_request_latency_seconds_count", &[]),
            Some(6.0)
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("1bad_name 1").is_err());
        assert!(parse("name").is_err());
        assert!(parse("name{k=v} 1").is_err());
        assert!(parse("name{k=\"v} 1").is_err());
        assert!(parse("name{k=\"v\"} x").is_err());
        assert!(parse("name 1 1234567890").is_err());
        // Comments and blanks are fine.
        assert_eq!(parse("# HELP x y\n\n# TYPE x counter\n").unwrap().len(), 0);
        // Special values parse.
        let s = parse("x{le=\"+Inf\"} +Inf").unwrap();
        assert!(s[0].value.is_infinite());
    }
}
