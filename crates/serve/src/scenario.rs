//! Request bodies → validated scenarios → canonical cache keys.
//!
//! A request parses into a canonical [`evcap_spec::Scenario`] (plus the
//! simulation-only knobs: slots, seed, coordination, replications).
//! Canonicalization happens inside the scenario layer, before any cache is
//! consulted, so `{"dist":"exponential:0.050"}` and `{"dist":"exp:0.05"}`
//! produce the same [`SolveScenario::cache_key`] — and the same
//! [`evcap_spec::Scenario::canonical_key`] for the artifact cache — and
//! share one cached solution.
//!
//! All failures are [`ApiError`]s: an HTTP status plus a machine-readable
//! `kind` and a human-readable message, rendered as a flat JSONL-style
//! object so clients (and the e2e tests) can parse responses with
//! [`evcap_obs::parse_line`].

use evcap_obs::{parse_line, JsonObject, JsonValue};
use evcap_spec::{PolicySpec, Scenario};

/// A structured request failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable discriminator (`invalid_spec`, …).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// A 400 with the given kind.
    pub fn bad_request(kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            status: 400,
            kind,
            message: message.into(),
        }
    }

    /// A 422 for scenarios that parse but cannot be solved.
    pub fn unprocessable(message: impl Into<String>) -> Self {
        Self {
            status: 422,
            kind: "unsolvable",
            message: message.into(),
        }
    }

    /// The JSON response body: `{"type":"error","kind":…,"message":…}`.
    pub fn body(&self) -> String {
        let mut obj = JsonObject::with_type("error");
        obj.field_str("kind", self.kind);
        obj.field_str("message", &self.message);
        obj.field_u64("status", u64::from(self.status));
        obj.finish()
    }
}

impl From<evcap_spec::SpecError> for ApiError {
    fn from(e: evcap_spec::SpecError) -> Self {
        ApiError::bad_request("invalid_spec", e.to_string())
    }
}

impl From<evcap_spec::SolveError> for ApiError {
    fn from(e: evcap_spec::SolveError) -> Self {
        match e {
            evcap_spec::SolveError::Spec(spec) => spec.into(),
            evcap_spec::SolveError::Unsolvable(reason) => ApiError::unprocessable(reason),
        }
    }
}

/// The widest horizon a request may ask for (explicit pmf slots).
pub const MAX_HORIZON: usize = 1 << 20;
/// The most sensors a simulation request may ask for.
pub const MAX_SENSORS: usize = 64;
/// The most replications a simulation request may ask for.
pub const MAX_REPLICATIONS: usize = 64;

/// A validated `/v1/solve` request: a canonical scenario.
///
/// Both cache identities are computed once at parse time, so the serve
/// hot path (a response-cache hit) borrows precomputed strings instead of
/// re-deriving `canonical_key` per request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveScenario {
    /// The canonical scenario to solve.
    pub scenario: Scenario,
    /// Precomputed response-cache key (`solve|<canonical_key>`).
    cache_key: String,
    /// Precomputed artifact identity (`Scenario::canonical_key`).
    artifact_key: String,
}

/// A validated `/v1/simulate` request: a canonical scenario plus the
/// simulation-only knobs (which do not affect the solve artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateScenario {
    /// The canonical scenario to solve before simulating.
    pub scenario: Scenario,
    /// Slots to simulate.
    pub slots: u64,
    /// RNG seed.
    pub seed: u64,
    /// `true` → rotating (round-robin) slot assignment, else independent.
    pub rotating: bool,
    /// Monte Carlo replications (1 = the classic single run).
    pub replications: usize,
    /// Precomputed response-cache key (scenario + simulation knobs).
    cache_key: String,
    /// Precomputed artifact identity (`Scenario::canonical_key`).
    artifact_key: String,
}

/// Parses a request body into a JSON object, field map included.
fn parse_object(body: &[u8]) -> Result<std::collections::BTreeMap<String, JsonValue>, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("invalid_json", "request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(ApiError::bad_request("invalid_json", "empty request body"));
    }
    match parse_line(text) {
        Ok(JsonValue::Object(map)) => Ok(map),
        Ok(_) => Err(ApiError::bad_request(
            "invalid_json",
            "request body must be a JSON object",
        )),
        Err(e) => Err(ApiError::bad_request(
            "invalid_json",
            format!("malformed JSON: {e}"),
        )),
    }
}

fn reject_unknown(
    map: &std::collections::BTreeMap<String, JsonValue>,
    allowed: &[&str],
) -> Result<(), ApiError> {
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::bad_request(
                "unknown_field",
                format!("unknown field `{key}` (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn want_str<'a>(
    map: &'a std::collections::BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<Option<&'a str>, ApiError> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::String(s)) => Ok(Some(s)),
        Some(_) => Err(ApiError::bad_request(
            "invalid_field",
            format!("field `{key}` must be a string"),
        )),
    }
}

fn want_f64(
    map: &std::collections::BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<Option<f64>, ApiError> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Number(n)) => {
            if n.is_finite() {
                Ok(Some(*n))
            } else {
                Err(ApiError::bad_request(
                    "invalid_field",
                    format!("field `{key}` must be finite"),
                ))
            }
        }
        Some(_) => Err(ApiError::bad_request(
            "invalid_field",
            format!("field `{key}` must be a number"),
        )),
    }
}

fn want_index(
    map: &std::collections::BTreeMap<String, JsonValue>,
    key: &str,
    max: u64,
) -> Result<Option<u64>, ApiError> {
    let Some(v) = want_f64(map, key)? else {
        return Ok(None);
    };
    if v < 0.0 || v.fract() != 0.0 {
        return Err(ApiError::bad_request(
            "invalid_field",
            format!("field `{key}` must be a non-negative integer"),
        ));
    }
    let v = v as u64;
    if v > max {
        return Err(ApiError::bad_request(
            "invalid_field",
            format!("field `{key}` must be ≤ {max}"),
        ));
    }
    Ok(Some(v))
}

fn positive(key: &str, v: f64) -> Result<f64, ApiError> {
    if v > 0.0 {
        Ok(v)
    } else {
        Err(ApiError::bad_request(
            "invalid_field",
            format!("field `{key}` must be positive"),
        ))
    }
}

const SOLVE_FIELDS: &[&str] = &[
    "dist",
    "e",
    "policy",
    "objective",
    "delta1",
    "delta2",
    "horizon",
];
const SIMULATE_FIELDS: &[&str] = &[
    "dist",
    "e",
    "policy",
    "objective",
    "delta1",
    "delta2",
    "horizon",
    "slots",
    "seed",
    "k",
    "sensors",
    "recharge",
    "coordination",
    "replications",
];

fn scenario_from(
    map: &std::collections::BTreeMap<String, JsonValue>,
) -> Result<Scenario, ApiError> {
    let raw_dist = want_str(map, "dist")?
        .ok_or_else(|| ApiError::bad_request("missing_field", "field `dist` is required"))?;
    if raw_dist.trim().starts_with("trace:") {
        // Trace specs name files on the *server's* filesystem; refusing them
        // keeps request bodies from probing local paths.
        return Err(ApiError::bad_request(
            "invalid_spec",
            "trace: distributions are not served over HTTP",
        ));
    }
    let e = want_f64(map, "e")?
        .ok_or_else(|| ApiError::bad_request("missing_field", "field `e` is required"))?;
    let e = positive("e", e)?;
    let policy = PolicySpec::parse(want_str(map, "policy")?.unwrap_or("greedy"))?;
    let delta1 = positive("delta1", want_f64(map, "delta1")?.unwrap_or(1.0))?;
    let delta2 = positive("delta2", want_f64(map, "delta2")?.unwrap_or(6.0))?;
    let horizon = want_index(map, "horizon", MAX_HORIZON as u64)?.unwrap_or(65_536) as usize;
    if horizon < 2 {
        return Err(ApiError::bad_request(
            "invalid_field",
            "field `horizon` must be ≥ 2",
        ));
    }
    let mut scenario = Scenario::new(raw_dist, policy, e)?
        .with_costs(delta1, delta2)
        .with_horizon(horizon);
    // Omitted ≡ explicit "qom": the canonical key elides the default, so
    // pre-objective requests keep hitting their existing cache entries.
    if let Some(spec) = want_str(map, "objective")? {
        scenario = scenario.with_objective(evcap_spec::parse_objective(spec)?);
    }
    Ok(scenario)
}

impl SolveScenario {
    /// Parses and validates a `/v1/solve` body.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError`] (status 400) for malformed JSON, unknown or
    /// ill-typed fields, and invalid specs — including non-finite numeric
    /// spec arguments like `weibull:nan,3`.
    pub fn from_body(body: &[u8]) -> Result<Self, ApiError> {
        let map = {
            let _parse = evcap_obs::timing::span("req.parse");
            parse_object(body)?
        };
        reject_unknown(&map, SOLVE_FIELDS)?;
        let _canon = evcap_obs::timing::span("req.canonicalize");
        let scenario = scenario_from(&map)?;
        let artifact_key = scenario.canonical_key();
        let cache_key = format!("solve|{artifact_key}");
        Ok(Self {
            scenario,
            cache_key,
            artifact_key,
        })
    }

    /// The canonical cache key: two requests get the same key iff they
    /// describe the same optimization. Borrowed — computed once at parse
    /// time, so cache hits allocate nothing for the lookup.
    pub fn cache_key(&self) -> &str {
        &self.cache_key
    }

    /// The scenario's artifact identity ([`Scenario::canonical_key`]),
    /// precomputed at parse time.
    pub fn artifact_key(&self) -> &str {
        &self.artifact_key
    }
}

impl SimulateScenario {
    /// Parses and validates a `/v1/simulate` body.
    ///
    /// # Errors
    ///
    /// As [`SolveScenario::from_body`], plus bounds on `slots` (caller's
    /// `max_slots`), `sensors` (≤ [`MAX_SENSORS`]) and the recharge spec.
    pub fn from_body(body: &[u8], max_slots: u64) -> Result<Self, ApiError> {
        let map = {
            let _parse = evcap_obs::timing::span("req.parse");
            parse_object(body)?
        };
        reject_unknown(&map, SIMULATE_FIELDS)?;
        let _canon = evcap_obs::timing::span("req.canonicalize");
        let mut scenario = scenario_from(&map)?;
        let slots = want_index(&map, "slots", max_slots)?.unwrap_or(100_000.min(max_slots));
        if slots == 0 {
            return Err(ApiError::bad_request(
                "invalid_field",
                "field `slots` must be ≥ 1",
            ));
        }
        let seed = want_index(&map, "seed", u64::MAX >> 1)?.unwrap_or(2012);
        let k = positive("k", want_f64(&map, "k")?.unwrap_or(1000.0))?;
        let sensors = want_index(&map, "sensors", MAX_SENSORS as u64)?.unwrap_or(1) as usize;
        if sensors == 0 {
            return Err(ApiError::bad_request(
                "invalid_field",
                "field `sensors` must be ≥ 1",
            ));
        }
        scenario = scenario.with_battery(k).with_sensors(sensors);
        // Default recharge mirrors the CLI (Bernoulli(0.5) delivering 2e, so
        // the mean rate matches the solve budget) and is already set by
        // `Scenario::new`; only an explicit spec replaces it.
        if let Some(spec) = want_str(&map, "recharge")? {
            scenario = scenario.with_recharge(spec)?;
        }
        let rotating = match want_str(&map, "coordination")?.unwrap_or("rotating") {
            "rotating" => true,
            "independent" => false,
            other => {
                return Err(ApiError::bad_request(
                    "invalid_field",
                    format!("unknown coordination `{other}` (try rotating, independent)"),
                ))
            }
        };
        let replications =
            want_index(&map, "replications", MAX_REPLICATIONS as u64)?.unwrap_or(1) as usize;
        if replications == 0 {
            return Err(ApiError::bad_request(
                "invalid_field",
                "field `replications` must be ≥ 1",
            ));
        }
        // Replications multiply work: the per-request slot budget bounds the
        // total (`slots × replications`), not just one replication.
        if slots.saturating_mul(replications as u64) > max_slots {
            return Err(ApiError::bad_request(
                "invalid_field",
                format!("`slots` × `replications` must be ≤ {max_slots} total slots"),
            ));
        }
        let artifact_key = scenario.canonical_key();
        let cache_key = format!(
            "sim|{artifact_key}|slots={slots}|seed={seed}|{}|reps={replications}",
            if rotating { "rot" } else { "ind" },
        );
        Ok(SimulateScenario {
            scenario,
            slots,
            seed,
            rotating,
            replications,
            cache_key,
            artifact_key,
        })
    }

    /// The canonical cache key for this simulation: the scenario's
    /// artifact identity plus the simulation-only knobs. Borrowed —
    /// computed once at parse time.
    pub fn cache_key(&self) -> &str {
        &self.cache_key
    }

    /// The scenario's artifact identity ([`Scenario::canonical_key`]),
    /// precomputed at parse time.
    pub fn artifact_key(&self) -> &str {
        &self.artifact_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_parses_with_defaults() {
        let s = SolveScenario::from_body(br#"{"dist":"weibull:40,3","e":0.2}"#).unwrap();
        assert_eq!(s.scenario.dist(), "weibull:40,3");
        assert_eq!(s.scenario.e(), 0.2);
        assert_eq!(s.scenario.policy(), PolicySpec::Greedy);
        assert_eq!(s.scenario.delta1(), 1.0);
        assert_eq!(s.scenario.delta2(), 6.0);
        assert_eq!(s.scenario.horizon(), 65_536);
    }

    #[test]
    fn all_policy_families_parse() {
        for (name, want) in [
            ("greedy", PolicySpec::Greedy),
            ("clustering", PolicySpec::Clustering),
            ("aggressive", PolicySpec::Aggressive),
            ("periodic", PolicySpec::Periodic { theta1: 3 }),
            ("myopic", PolicySpec::Myopic),
        ] {
            let body = format!(r#"{{"dist":"weibull:40,3","e":0.2,"policy":"{name}"}}"#);
            let s = SolveScenario::from_body(body.as_bytes()).unwrap();
            assert_eq!(s.scenario.policy(), want, "{name}");
        }
    }

    #[test]
    fn equivalent_spellings_share_a_cache_key() {
        let a = SolveScenario::from_body(br#"{"dist":"exponential:0.050","e":0.25}"#).unwrap();
        let b = SolveScenario::from_body(br#"{"dist":"exp:0.05","e":0.25}"#).unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.scenario.canonical_key(), b.scenario.canonical_key());

        let c = SolveScenario::from_body(br#"{"dist":"exp:0.05","e":0.25,"delta1":2}"#).unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn objective_parses_and_keys_back_compatibly() {
        use evcap_spec::Objective;
        let omitted = SolveScenario::from_body(br#"{"dist":"exp:0.05","e":0.25}"#).unwrap();
        let explicit =
            SolveScenario::from_body(br#"{"dist":"exp:0.05","e":0.25,"objective":"qom"}"#).unwrap();
        // Explicit "qom" is byte-identical to omitting the field.
        assert_eq!(omitted.cache_key(), explicit.cache_key());
        assert_eq!(omitted.artifact_key(), explicit.artifact_key());
        assert_eq!(omitted.scenario.objective(), Objective::Qom);

        let aoi =
            SolveScenario::from_body(br#"{"dist":"exp:0.05","e":0.25,"objective":"aoi-mean"}"#)
                .unwrap();
        assert_eq!(aoi.scenario.objective(), Objective::AoiMean);
        assert_ne!(aoi.cache_key(), omitted.cache_key());
        assert!(aoi.artifact_key().ends_with("|obj=aoi-mean"));

        let sim = SimulateScenario::from_body(
            br#"{"dist":"exp:0.05","e":0.25,"slots":5000,"objective":"aoi-peak"}"#,
            1_000_000,
        )
        .unwrap();
        assert_eq!(sim.scenario.objective(), Objective::AoiPeak);

        let err = SolveScenario::from_body(br#"{"dist":"exp:0.05","e":0.25,"objective":"fresh"}"#)
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.kind, "invalid_spec");
        assert!(err.message.contains("aoi-mean"), "{}", err.message);
    }

    #[test]
    fn solve_and_simulate_share_the_artifact_identity() {
        // A default simulate request must hit the same artifact-cache entry
        // as a solve for the same scenario: same canonical_key.
        let solve = SolveScenario::from_body(br#"{"dist":"exp:0.05","e":0.25}"#).unwrap();
        let sim = SimulateScenario::from_body(
            br#"{"dist":"exponential:0.050","e":0.25,"slots":5000}"#,
            1_000_000,
        )
        .unwrap();
        assert_eq!(solve.scenario.canonical_key(), sim.scenario.canonical_key());
    }

    #[test]
    fn nan_spec_arguments_are_structured_400s() {
        let err = SolveScenario::from_body(br#"{"dist":"weibull:nan,3","e":0.2}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.kind, "invalid_spec");
        assert!(err.message.contains("not finite"), "{}", err.message);
        // The rendered body parses back and carries the kind.
        let parsed = parse_line(&err.body()).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(JsonValue::as_str),
            Some("invalid_spec")
        );
    }

    #[test]
    fn structural_errors_are_rejected() {
        for (body, kind) in [
            (&b"not json"[..], "invalid_json"),
            (br#"[1,2]"#, "invalid_json"),
            (br#"{}"#, "missing_field"),
            (br#"{"dist":"exp:0.05"}"#, "missing_field"),
            (br#"{"dist":"exp:0.05","e":0.2,"bogus":1}"#, "unknown_field"),
            (br#"{"dist":7,"e":0.2}"#, "invalid_field"),
            (br#"{"dist":"exp:0.05","e":-1}"#, "invalid_field"),
            (
                br#"{"dist":"exp:0.05","e":0.2,"policy":"x"}"#,
                "invalid_spec",
            ),
            (
                br#"{"dist":"exp:0.05","e":0.2,"horizon":1.5}"#,
                "invalid_field",
            ),
            (br#"{"dist":"trace:/etc/passwd","e":0.2}"#, "invalid_spec"),
            (br#"{"dist":"zipf:2","e":0.2}"#, "invalid_spec"),
        ] {
            let err = SolveScenario::from_body(body).unwrap_err();
            assert_eq!(err.status, 400, "{body:?}");
            assert_eq!(err.kind, kind, "{body:?}: {}", err.message);
        }
    }

    #[test]
    fn simulate_parses_bounds_and_defaults() {
        let s = SimulateScenario::from_body(
            br#"{"dist":"det:7","e":0.3,"slots":5000,"seed":9,"sensors":2}"#,
            1_000_000,
        )
        .unwrap();
        assert_eq!(s.slots, 5000);
        assert_eq!(s.seed, 9);
        assert_eq!(s.scenario.sensors(), 2);
        assert_eq!(s.scenario.recharge(), "bernoulli:0.5,0.6");
        assert!(s.rotating);

        let err =
            SimulateScenario::from_body(br#"{"dist":"det:7","e":0.3,"slots":2000000}"#, 1_000_000)
                .unwrap_err();
        assert_eq!(err.kind, "invalid_field");

        let err = SimulateScenario::from_body(
            br#"{"dist":"det:7","e":0.3,"recharge":"bernoulli:nan,1"}"#,
            1_000_000,
        )
        .unwrap_err();
        assert_eq!(err.kind, "invalid_spec");
    }

    #[test]
    fn replications_parse_validate_and_key() {
        // Default is one replication.
        let one =
            SimulateScenario::from_body(br#"{"dist":"det:7","e":0.3,"slots":5000}"#, 1_000_000)
                .unwrap();
        assert_eq!(one.replications, 1);

        let many = SimulateScenario::from_body(
            br#"{"dist":"det:7","e":0.3,"slots":5000,"replications":8}"#,
            1_000_000,
        )
        .unwrap();
        assert_eq!(many.replications, 8);
        // The replication count is part of the cache identity…
        assert_ne!(one.cache_key(), many.cache_key());
        // …but not of the artifact identity: both share one solve.
        assert_eq!(one.scenario.canonical_key(), many.scenario.canonical_key());

        // Zero and absurdly large counts are structured 400s.
        for body in [
            &br#"{"dist":"det:7","e":0.3,"slots":5000,"replications":0}"#[..],
            br#"{"dist":"det:7","e":0.3,"slots":5000,"replications":1000000}"#,
            br#"{"dist":"det:7","e":0.3,"slots":5000,"replications":2.5}"#,
        ] {
            let err = SimulateScenario::from_body(body, 1_000_000).unwrap_err();
            assert_eq!(err.status, 400, "{body:?}");
            assert_eq!(err.kind, "invalid_field", "{body:?}: {}", err.message);
        }

        // The slot budget bounds total work across replications.
        let err = SimulateScenario::from_body(
            br#"{"dist":"det:7","e":0.3,"slots":400000,"replications":4}"#,
            1_000_000,
        )
        .unwrap_err();
        assert_eq!(err.kind, "invalid_field");
        assert!(err.message.contains("total slots"), "{}", err.message);
    }

    #[test]
    fn simulate_cache_keys_separate_seeds() {
        let body = |seed: u64| {
            format!(r#"{{"dist":"det:7","e":0.3,"slots":1000,"seed":{seed}}}"#).into_bytes()
        };
        let a = SimulateScenario::from_body(&body(1), 1_000_000).unwrap();
        let b = SimulateScenario::from_body(&body(2), 1_000_000).unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        assert_eq!(a.scenario.canonical_key(), b.scenario.canonical_key());
    }
}
