//! Policy-as-a-service: the paper's optimizers behind an HTTP API.
//!
//! `evcap-serve` turns the offline toolchain into a daemon: `POST
//! /v1/solve` returns an activation policy (FI greedy or PI clustering)
//! with its analytic QoM, `POST /v1/simulate` runs a bounded seeded
//! simulation, `GET /healthz` and `GET /metrics` cover operations. The
//! crate is std-only — the HTTP server ([`server`]), client ([`client`]),
//! and JSON layer (via `evcap-obs`) use nothing outside the workspace.
//!
//! The hot path is the [`cache`] module, used in two tiers. Responses are
//! cached in a sharded LRU keyed by the *canonicalized* scenario (see
//! [`scenario`] and `evcap_spec::canonical_dist`), and in front of the
//! compute sits a second sharded cache of `evcap_spec::SolvedPolicy`
//! artifacts keyed by `Scenario::canonical_key()` — so `/v1/simulate`
//! requests varying only in slots/seed/replications, and `/v1/solve` for
//! the same scenario, share one clustering/LP solve. Both tiers collapse
//! concurrent requests for the same uncached key into a single
//! computation ("single-flight" coalescing) — N clients asking for the
//! same Weibull policy cost one LP solve, not N.

// `forbid` would reject the signal shim's module-level `allow`, so the
// crate denies and the shim alone opts out (tidy checks the pairing).
#![deny(unsafe_code)]

pub mod cache;
pub mod client;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod prometheus;
pub mod scenario;
pub mod server;
#[allow(unsafe_code)] // tidy:allow(unsafe): the signal(2) FFI shim
pub mod signal;

pub use cache::{Fetch, Lru, ShardSnapshot, ShardedCache, StatsSnapshot};
pub use client::{Conn, Response};
pub use scenario::{ApiError, SimulateScenario, SolveScenario};
pub use server::{RecentRequest, ServeConfig, Server, StopFlag};
