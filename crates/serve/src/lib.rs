//! Policy-as-a-service: the paper's optimizers behind an HTTP API.
//!
//! `evcap-serve` turns the offline toolchain into a daemon: `POST
//! /v1/solve` returns an activation policy (FI greedy or PI clustering)
//! with its analytic QoM, `POST /v1/simulate` runs a bounded seeded
//! simulation, `GET /healthz` and `GET /metrics` cover operations. The
//! crate is std-only — the HTTP server ([`server`]), client ([`client`]),
//! and JSON layer (via `evcap-obs`) use nothing outside the workspace.
//!
//! The hot path is the [`cache`] module: responses are cached in a sharded
//! LRU keyed by the *canonicalized* scenario (see [`scenario`] and
//! `evcap_spec::canonical_dist`), and concurrent requests for the same
//! uncached scenario collapse into a single computation ("single-flight"
//! coalescing) — N clients asking for the same Weibull policy cost one
//! LP solve, not N.

pub mod cache;
pub mod client;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod scenario;
pub mod server;
pub mod signal;

pub use cache::{Fetch, Lru, ShardedCache, StatsSnapshot};
pub use client::{Conn, Response};
pub use scenario::{ApiError, SimulateScenario, SolveScenario};
pub use server::{ServeConfig, Server, StopFlag};
