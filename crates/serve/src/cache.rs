//! Sharded LRU cache with single-flight coalescing.
//!
//! The server's hot path: scenario solves are pure functions of their
//! canonical key, so every `/v1/solve` goes through [`ShardedCache`].
//! Keys hash to one of `S` independently locked shards (contention scales
//! down with `S`), and each shard is an [`Lru`] — a slab-backed doubly
//! linked list + hash map, O(1) for get/insert/evict.
//!
//! **Single-flight:** when a key misses, the first requester (the *leader*)
//! inserts an in-flight marker and computes outside the shard lock; every
//! concurrent requester for the same key finds the marker and blocks on its
//! condvar instead of redundantly re-running the expensive solve. N
//! concurrent requests for one unsolved scenario trigger exactly one
//! compute. Failed computes are not cached: the leader removes its marker
//! so the next request retries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

const NIL: usize = usize::MAX;

struct Node<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used map with O(1) operations: `HashMap` for lookup,
/// slab-allocated doubly linked list for recency order.
pub struct Lru<V> {
    map: HashMap<String, usize>,
    nodes: Vec<Option<Node<V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    cap: usize,
}

impl<V> Lru<V> {
    /// Creates an LRU holding at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            map: HashMap::with_capacity(cap.min(4096)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn node(&self, i: usize) -> &Node<V> {
        // deepcheck:allow(panic-path): slab slots reachable through map/list links are live by construction; a dead index is a corrupted Lru, not request input
        self.nodes[i].as_ref().expect("live node") // tidy:allow(serve-unwrap): intrusive-list liveness invariant, not request input
    }

    fn node_mut(&mut self, i: usize) -> &mut Node<V> {
        // deepcheck:allow(panic-path): slab slots reachable through map/list links are live by construction; a dead index is a corrupted Lru, not request input
        self.nodes[i].as_mut().expect("live node") // tidy:allow(serve-unwrap): intrusive-list liveness invariant, not request input
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let n = self.node(i);
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.node_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.node_mut(next).prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(i);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head == NIL {
            self.tail = i;
        } else {
            self.node_mut(old_head).prev = i;
        }
        self.head = i;
    }

    /// Looks up `key` and marks it most recently used.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(&self.node(i).value)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &str) -> Option<&V> {
        self.map.get(key).map(|&i| &self.node(i).value)
    }

    /// Inserts or replaces `key`, marking it most recently used. When the
    /// insert grows the map past capacity, the least-recently-used entry is
    /// evicted and returned.
    pub fn insert(&mut self, key: String, value: V) -> Option<(String, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.node_mut(i).value = value;
            self.unlink(i);
            self.push_front(i);
            return None;
        }
        let evicted = if self.map.len() >= self.cap {
            let t = self.tail;
            self.unlink(t);
            // deepcheck:allow(panic-path): the tail of a non-empty list is a live slab slot; a dead index is a corrupted Lru, not request input
            let node = self.nodes[t].take().expect("tail is live"); // tidy:allow(serve-unwrap): intrusive-list liveness invariant, not request input
            self.free.push(t);
            self.map.remove(&node.key);
            Some((node.key, node.value))
        } else {
            None
        };
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                // deepcheck:allow(panic-path): indices on the free list were pushed by take()/evict and stay in bounds
                self.nodes[i] = Some(node);
                i
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        let i = self.map.remove(key)?;
        self.unlink(i);
        // deepcheck:allow(panic-path): slab slots reachable through the map are live by construction; a dead index is a corrupted Lru, not request input
        let node = self.nodes[i].take().expect("live node"); // tidy:allow(serve-unwrap): intrusive-list liveness invariant, not request input
        self.free.push(i);
        Some(node.value)
    }

    /// Keys in most-recently-used-first order (for tests and diagnostics).
    pub fn keys_mru(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            let n = self.node(i);
            out.push(n.key.as_str());
            i = n.next;
        }
        out
    }
}

/// How a [`ShardedCache::get_or_compute`] request was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fetch<V, E> {
    /// The key was already cached.
    Hit(V),
    /// This request ran the compute (it was the single flight's leader).
    Computed(V),
    /// Another request was already computing; this one waited for it.
    Coalesced(V),
    /// The compute failed (leader and waiters all observe the error).
    Failed(E),
    /// A waiter gave up after the coalescing timeout.
    TimedOut,
}

impl<V, E> Fetch<V, E> {
    /// The cache-disposition label used in response headers and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Fetch::Hit(_) => "hit",
            Fetch::Computed(_) => "miss",
            Fetch::Coalesced(_) => "coalesced",
            Fetch::Failed(_) => "failed",
            Fetch::TimedOut => "timeout",
        }
    }
}

struct Flight<V, E> {
    slot: Mutex<Option<Result<V, E>>>,
    cv: Condvar,
}

enum Entry<V, E> {
    InFlight(Arc<Flight<V, E>>),
    Ready(V),
}

/// Monotonic counters describing cache behavior since startup.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    failures: AtomicU64,
    timeouts: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests answered from a Ready entry.
    pub hits: u64,
    /// Requests that ran the compute.
    pub misses: u64,
    /// Requests that waited on another request's compute.
    pub coalesced: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Failed computes.
    pub failures: u64,
    /// Waiters that hit the coalescing timeout.
    pub timeouts: u64,
}

impl CacheStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    fn merge(&mut self, other: &StatsSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.evictions += other.evictions;
        self.failures += other.failures;
        self.timeouts += other.timeouts;
    }
}

/// A point-in-time view of one shard: its counters plus occupancy, for
/// per-shard gauge exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSnapshot {
    /// The shard's counters since startup.
    pub stats: StatsSnapshot,
    /// Entries currently held (in-flight markers included).
    pub occupancy: usize,
    /// The shard's configured capacity.
    pub capacity: usize,
}

/// One independently locked shard: an LRU of ready/in-flight entries plus
/// its own counters (so exposition can show per-shard skew).
struct Shard<V, E> {
    lru: Mutex<Lru<Entry<V, E>>>,
    stats: CacheStats,
}

/// A sharded, single-flight LRU cache. `V` is the cached value (cloned out
/// on every hit — use something cheap to clone, like `Arc<str>` or a small
/// `String`); `E` is the compute error type.
pub struct ShardedCache<V, E = String> {
    shards: Box<[Shard<V, E>]>,
}

impl<V: Clone, E: Clone> ShardedCache<V, E> {
    /// Creates a cache with `capacity` total entries spread over `shards`
    /// independently locked shards (both forced ≥ 1; per-shard capacity is
    /// `ceil(capacity / shards)`).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Shard {
                    lru: Mutex::new(Lru::new(per_shard)),
                    stats: CacheStats::default(),
                })
                .collect(),
        }
    }

    fn shard_of(&self, key: &str) -> &Shard<V, E> {
        // FNV-1a: stable across runs (unlike RandomState), trivially fast.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // deepcheck:allow(panic-path): the index is reduced modulo shards.len(), in bounds by construction
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Total entries across shards (in-flight markers included).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lru.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters since startup, aggregated across shards.
    pub fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for shard in self.shards.iter() {
            total.merge(&shard.stats.snapshot());
        }
        total
    }

    /// Per-shard counters and occupancy, in shard-index order.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .map(|shard| {
                let lru = shard.lru.lock().unwrap_or_else(PoisonError::into_inner);
                ShardSnapshot {
                    stats: shard.stats.snapshot(),
                    occupancy: lru.len(),
                    capacity: lru.capacity(),
                }
            })
            .collect()
    }

    /// Returns the cached value for `key`, or computes it exactly once no
    /// matter how many threads ask concurrently.
    ///
    /// The leader runs `compute` with no lock held; concurrent requests for
    /// the same key block (up to `wait_timeout`) on the in-flight result.
    /// Successful values are inserted (possibly evicting the LRU tail);
    /// failures are returned to everyone currently waiting but not cached.
    pub fn get_or_compute(
        &self,
        key: &str,
        wait_timeout: Duration,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Fetch<V, E> {
        let shard = self.shard_of(key);
        let flight: Arc<Flight<V, E>>;
        let leader: bool;
        {
            // Locks ride through poisoning: the compute runs outside the
            // lock, so a poisoned shard means a sibling panicked in pure
            // bookkeeping — recovering the guard beats bricking the cache
            // for every later request.
            let mut lru = shard.lru.lock().unwrap_or_else(PoisonError::into_inner);
            match lru.get(key) {
                Some(Entry::Ready(v)) => {
                    let v = v.clone();
                    shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                    return Fetch::Hit(v);
                }
                Some(Entry::InFlight(f)) => {
                    flight = Arc::clone(f);
                    leader = false;
                }
                None => {
                    flight = Arc::new(Flight {
                        slot: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    if lru
                        .insert(key.to_owned(), Entry::InFlight(Arc::clone(&flight)))
                        .is_some()
                    {
                        shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    leader = true;
                }
            }
        }

        if leader {
            let result = compute();
            {
                let mut lru = shard.lru.lock().unwrap_or_else(PoisonError::into_inner);
                match &result {
                    Ok(v) => {
                        if lru
                            .insert(key.to_owned(), Entry::Ready(v.clone()))
                            .is_some()
                        {
                            shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        // Drop our marker so the next request retries — but
                        // only if it is still ours: under heavy eviction a
                        // later leader may already have re-inserted a new
                        // flight for this key.
                        let ours = matches!(
                            lru.peek(key),
                            Some(Entry::InFlight(f)) if Arc::ptr_eq(f, &flight)
                        );
                        if ours {
                            lru.remove(key);
                        }
                    }
                }
            }
            let mut slot = flight.slot.lock().unwrap_or_else(PoisonError::into_inner);
            *slot = Some(result.clone());
            drop(slot);
            flight.cv.notify_all();
            shard.stats.misses.fetch_add(1, Ordering::Relaxed);
            return match result {
                Ok(v) => Fetch::Computed(v),
                Err(e) => {
                    shard.stats.failures.fetch_add(1, Ordering::Relaxed);
                    Fetch::Failed(e)
                }
            };
        }

        // Waiter: block on the leader's result.
        shard.stats.coalesced.fetch_add(1, Ordering::Relaxed);
        let guard = flight.slot.lock().unwrap_or_else(PoisonError::into_inner);
        let (guard, _timeout) = flight
            .cv
            .wait_timeout_while(guard, wait_timeout, |slot| slot.is_none())
            .unwrap_or_else(PoisonError::into_inner);
        // `wait_timeout_while` returns either because the slot filled or
        // because the wait timed out with it still empty — so an empty slot
        // here *is* the timeout, no separate flag check needed.
        match guard.as_ref() {
            None => {
                shard.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                Fetch::TimedOut
            }
            Some(Ok(v)) => Fetch::Coalesced(v.clone()),
            Some(Err(e)) => {
                shard.stats.failures.fetch_add(1, Ordering::Relaxed);
                Fetch::Failed(e.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn lru_get_touches_and_insert_evicts_in_order() {
        let mut lru = Lru::new(3);
        assert!(lru.is_empty());
        assert_eq!(lru.capacity(), 3);
        for k in ["a", "b", "c"] {
            assert!(lru.insert(k.into(), k.to_uppercase()).is_none());
        }
        assert_eq!(lru.keys_mru(), vec!["c", "b", "a"]);
        // Touch `a`; `b` becomes the LRU and is evicted next.
        assert_eq!(lru.get("a"), Some(&"A".to_string()));
        assert_eq!(lru.keys_mru(), vec!["a", "c", "b"]);
        let (ek, ev) = lru.insert("d".into(), "D".into()).expect("evicts");
        assert_eq!((ek.as_str(), ev.as_str()), ("b", "B"));
        assert_eq!(lru.keys_mru(), vec!["d", "a", "c"]);
        assert_eq!(lru.len(), 3);
        // peek does not touch.
        assert_eq!(lru.peek("c"), Some(&"C".to_string()));
        assert_eq!(lru.keys_mru(), vec!["d", "a", "c"]);
        // Replace touches but never evicts.
        assert!(lru.insert("c".into(), "C2".into()).is_none());
        assert_eq!(lru.keys_mru(), vec!["c", "d", "a"]);
        assert_eq!(lru.get("c"), Some(&"C2".to_string()));
    }

    #[test]
    fn lru_remove_and_slab_reuse() {
        let mut lru = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert_eq!(lru.remove("a"), Some(1));
        assert_eq!(lru.remove("a"), None);
        assert_eq!(lru.len(), 1);
        lru.insert("c".into(), 3); // reuses the freed slab slot
        lru.insert("d".into(), 4); // evicts b
        assert_eq!(lru.keys_mru(), vec!["d", "c"]);
        assert_eq!(lru.peek("b"), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut lru = Lru::new(0);
        assert_eq!(lru.capacity(), 1);
        assert!(lru.insert("a".into(), 1).is_none());
        let evicted = lru.insert("b".into(), 2).expect("capacity 1 evicts");
        assert_eq!(evicted.0, "a");
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let cache: ShardedCache<String> = ShardedCache::new(8, 2);
        let to = Duration::from_secs(1);
        let f = cache.get_or_compute("k", to, || Ok("v".to_string()));
        assert!(matches!(f, Fetch::Computed(ref v) if v == "v"));
        assert_eq!(f.label(), "miss");
        let f = cache.get_or_compute("k", to, || panic!("must not recompute"));
        assert!(matches!(f, Fetch::Hit(ref v) if v == "v"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.coalesced), (1, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_computes_are_not_cached() {
        let cache: ShardedCache<String> = ShardedCache::new(8, 1);
        let to = Duration::from_secs(1);
        let f = cache.get_or_compute("k", to, || Err("boom".to_string()));
        assert!(matches!(f, Fetch::Failed(ref e) if e == "boom"));
        assert!(cache.is_empty(), "error entries must not linger");
        // The next request retries and can succeed.
        let f = cache.get_or_compute("k", to, || Ok("v".to_string()));
        assert!(matches!(f, Fetch::Computed(_)));
        assert_eq!(cache.stats().failures, 1);
    }

    #[test]
    fn single_flight_coalesces_concurrent_requests_to_one_compute() {
        // M threads rendezvous, then all request the same unsolved key. The
        // leader's compute blocks until every thread has issued its request,
        // so all non-leaders must take the coalescing path: exactly one
        // compute runs, everyone gets the value.
        const M: usize = 8;
        let cache: ShardedCache<String> = ShardedCache::new(64, 4);
        let computes = AtomicUsize::new(0);
        let entered = Barrier::new(M);
        let release = Barrier::new(2); // leader + the release thread
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..M)
                .map(|_| {
                    scope.spawn(|| {
                        entered.wait();
                        cache.get_or_compute("scenario", Duration::from_secs(30), || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            release.wait(); // hold the flight open
                            Ok("solved".to_string())
                        })
                    })
                })
                .collect();
            // Release the leader once all M requests are in flight: M-1 of
            // them are waiters by then (coalesced counter ticks up), or at
            // minimum have passed the barrier and are queued on the shard.
            while cache.stats().coalesced < (M - 1) as u64 {
                std::thread::yield_now();
            }
            release.wait();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
            let leaders = results
                .iter()
                .filter(|f| matches!(f, Fetch::Computed(_)))
                .count();
            let waiters = results
                .iter()
                .filter(|f| matches!(f, Fetch::Coalesced(_)))
                .count();
            assert_eq!(leaders, 1);
            assert_eq!(waiters, M - 1);
            for f in &results {
                match f {
                    Fetch::Computed(v) | Fetch::Coalesced(v) => assert_eq!(v, "solved"),
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.coalesced, (M - 1) as u64);
    }

    #[test]
    fn waiters_observe_leader_failure() {
        let cache: ShardedCache<String> = ShardedCache::new(8, 1);
        let release = Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                cache.get_or_compute("k", Duration::from_secs(10), || {
                    release.wait();
                    // Fail only once the waiter has reached the flight, so
                    // it deterministically observes the error.
                    while cache.stats().coalesced < 1 {
                        std::thread::yield_now();
                    }
                    Err("nope".to_string())
                })
            });
            let waiter = scope.spawn(|| {
                release.wait();
                cache.get_or_compute("k", Duration::from_secs(10), || {
                    panic!("waiter must not compute")
                })
            });
            assert!(matches!(leader.join().unwrap(), Fetch::Failed(_)));
            assert!(matches!(waiter.join().unwrap(), Fetch::Failed(_)));
        });
        assert!(cache.is_empty());
    }

    #[test]
    fn waiter_times_out_when_leader_is_slow() {
        let cache: ShardedCache<String> = ShardedCache::new(8, 1);
        let hold = Barrier::new(2);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                cache.get_or_compute("k", Duration::from_secs(10), || {
                    hold.wait(); // waiter is about to request
                                 // Stay in flight until the waiter has given up.
                    while cache.stats().timeouts < 1 {
                        std::thread::yield_now();
                    }
                    Ok("slow".to_string())
                })
            });
            let waiter = scope.spawn(|| {
                hold.wait();
                cache.get_or_compute("k", Duration::from_millis(10), || {
                    panic!("waiter must not compute")
                })
            });
            assert!(matches!(waiter.join().unwrap(), Fetch::TimedOut));
            assert!(matches!(leader.join().unwrap(), Fetch::Computed(_)));
        });
        assert_eq!(cache.stats().timeouts, 1);
        // The slow value still landed in the cache for later requests.
        assert!(matches!(
            cache.get_or_compute("k", Duration::from_secs(1), || panic!("cached")),
            Fetch::Hit(ref v) if v == "slow"
        ));
    }

    #[test]
    fn shard_snapshots_sum_to_the_aggregate() {
        let cache: ShardedCache<u32> = ShardedCache::new(16, 4);
        let to = Duration::from_secs(1);
        for i in 0..10 {
            let key = format!("k{i}");
            cache.get_or_compute(&key, to, || Ok::<_, String>(i));
            cache.get_or_compute(&key, to, || panic!("cached"));
        }
        let shards = cache.shard_snapshots();
        assert_eq!(shards.len(), 4);
        assert!(shards.iter().all(|s| s.capacity == 4));
        let hits: u64 = shards.iter().map(|s| s.stats.hits).sum();
        let misses: u64 = shards.iter().map(|s| s.stats.misses).sum();
        let occupancy: usize = shards.iter().map(|s| s.occupancy).sum();
        let total = cache.stats();
        assert_eq!(hits, total.hits);
        assert_eq!(misses, total.misses);
        assert_eq!((hits, misses), (10, 10));
        assert_eq!(occupancy, cache.len());
    }

    #[test]
    fn eviction_is_per_shard_and_counted() {
        // One shard capacity 2: inserting 3 distinct keys evicts the oldest.
        let cache: ShardedCache<u32> = ShardedCache::new(2, 1);
        let to = Duration::from_secs(1);
        for (i, k) in ["a", "b", "c"].iter().enumerate() {
            cache.get_or_compute(k, to, || Ok::<_, String>(i as u32));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // `a` was evicted: requesting it recomputes.
        let f = cache.get_or_compute("a", to, || Ok::<_, String>(99));
        assert!(matches!(f, Fetch::Computed(99)));
    }
}
