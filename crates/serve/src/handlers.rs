//! Scenario execution: rendering solved artifacts and running simulations.
//!
//! The actual policy construction lives in `evcap_spec::solve` — the
//! single pipeline shared with the CLI and the bench runners. Handlers
//! take a [`SolvedPolicy`] artifact (produced once per canonical scenario
//! by the server's artifact cache) and either serialize it (`/v1/solve`)
//! or drive the simulation engine with it (`/v1/simulate`).
//!
//! Handlers return the serialized JSON response body (a `String`) so the
//! response cache can store bodies directly — a cache hit replays bytes
//! without re-serializing, and hit/miss bodies are identical by
//! construction.

use evcap_core::SlotAssignment;
use evcap_energy::{Energy, RechargeProcess};
use evcap_obs::JsonObject;
use evcap_sim::{ReplicationBatch, Simulation};
use evcap_spec::{PolicySpec, Scenario, SolvedPolicy};

use crate::scenario::{ApiError, SimulateScenario, SolveScenario};

/// Most activation coefficients included in a solve response (the full
/// vector can be 10⁶ entries; clients wanting more lower the horizon).
const MAX_COEFFICIENTS: usize = 512;

/// Inert recharge returned on the *unreachable* re-parse error path inside
/// the per-sensor factories: the spec string was validated at request
/// entry, and `parse_recharge` is deterministic, so this can only surface
/// if the spec layer itself breaks — in which case a sensor that never
/// recharges shows up plainly in the results instead of a panic killing a
/// worker thread (request paths must not panic).
struct DeadRecharge;

impl RechargeProcess for DeadRecharge {
    fn next(&mut self, _rng: &mut dyn rand::RngCore) -> Energy {
        Energy::ZERO
    }
    fn mean_rate(&self) -> f64 {
        0.0
    }
    fn label(&self) -> String {
        "dead(unreachable re-parse failure)".to_owned()
    }
    fn reset(&mut self) {}
}

/// Builds one sensor's recharge process from an already-validated spec,
/// without a panic path.
fn recharge_process(spec: &str) -> Box<dyn RechargeProcess> {
    evcap_spec::parse_recharge(spec).unwrap_or_else(|_| Box::new(DeadRecharge))
}

/// Solves a canonical scenario into a reusable artifact.
///
/// This is the compute behind the server's artifact cache: one call per
/// distinct [`Scenario::canonical_key`], shared by `/v1/solve` and every
/// `/v1/simulate` variation in slots/seed/replications.
///
/// # Errors
///
/// [`ApiError`] 400 for specs that fail domain validation at parse time,
/// 422 for scenarios the optimizer rejects (e.g. an infeasible budget).
pub fn solve_artifact(scenario: &Scenario) -> Result<SolvedPolicy, ApiError> {
    evcap_spec::solve(scenario).map_err(ApiError::from)
}

/// Serializes a solved artifact as the `/v1/solve` response body.
pub fn render_solve(s: &SolveScenario, solved: &SolvedPolicy) -> String {
    let sc = &s.scenario;
    let meta = &solved.meta;
    let mut obj = JsonObject::with_type("solve");
    obj.field_str("policy", sc.policy().name());
    obj.field_str("dist", sc.dist());
    obj.field_f64("e", sc.e());
    obj.field_f64("mean_gap", solved.pmf.mean());
    obj.field_str("label", &meta.label);
    // Age objectives announce themselves and their natural-units value;
    // the default (QoM) stays absent so pre-objective response bodies —
    // and every cached byte derived from them — are unchanged.
    if !sc.objective().is_default() {
        obj.field_str("objective", sc.objective().name());
        if let Some(value) = meta.objective_value {
            obj.field_f64("objective_value", value);
        }
    }
    match sc.policy() {
        PolicySpec::Greedy => {
            obj.field_f64("ideal_qom", meta.objective.unwrap_or(0.0));
            obj.field_f64("discharge_rate", meta.discharge_rate.unwrap_or(0.0));
            let n = solved.pmf.horizon().min(MAX_COEFFICIENTS);
            let coeffs: Vec<f64> = (1..=n).map(|i| solved.probability(i)).collect();
            obj.field_f64_array("coefficients", &coeffs);
            obj.field_usize("coefficients_shown", n);
        }
        PolicySpec::Clustering => {
            obj.field_f64("ideal_qom", meta.objective.unwrap_or(0.0));
            obj.field_f64("discharge_rate", meta.discharge_rate.unwrap_or(0.0));
            obj.field_f64("expected_cycle", meta.expected_cycle.unwrap_or(0.0));
            if let Some(r) = &meta.regions {
                obj.field_usize("n1", r.n1);
                obj.field_usize("n2", r.n2);
                obj.field_usize("n3", r.n3);
                let (q1, q2, q3) = r.boundary;
                obj.field_f64_array("boundary_coefficients", &[q1, q2, q3]);
            }
        }
        PolicySpec::Myopic => {
            if let Some(qom) = meta.objective {
                obj.field_f64("ideal_qom", qom);
            }
            if let Some(rate) = meta.discharge_rate {
                obj.field_f64("discharge_rate", rate);
            }
            if let Some(cycle) = meta.expected_cycle {
                obj.field_f64("expected_cycle", cycle);
            }
        }
        PolicySpec::Aggressive | PolicySpec::Periodic { .. } => {
            if let Some(rate) = meta.discharge_rate {
                obj.field_f64("discharge_rate", rate);
            }
        }
    }
    obj.finish()
}

/// Runs the bounded, seeded simulation a `/v1/simulate` scenario asks for
/// (driving the engine with the pre-solved artifact) and serializes the
/// resulting report.
///
/// # Errors
///
/// 422 for simulation setups the engine rejects.
pub fn simulate(s: &SimulateScenario, solved: &SolvedPolicy) -> Result<String, ApiError> {
    let sc = &s.scenario;
    let pmf = &solved.pmf;
    // Canonicalization validated name/arity/finiteness but not parameter
    // domains (e.g. a Bernoulli probability > 1), so parse once up front to
    // turn domain failures into a 422 before any sensor asks for a process.
    evcap_spec::parse_recharge(sc.recharge())
        .map_err(|e| ApiError::unprocessable(e.to_string()))?;
    let mut make_recharge = |_: usize| recharge_process(sc.recharge());
    let mut builder = Simulation::builder(pmf)
        .slots(s.slots)
        .seed(s.seed)
        .sensors(sc.sensors())
        .consumption(solved.consumption)
        .battery(Energy::from_units(sc.battery()));
    builder = if s.rotating {
        builder.assignment(SlotAssignment::RoundRobin)
    } else {
        builder.independent()
    };
    // Batched requests run the lockstep SoA replication engine (all seeds
    // advance together per slot) and answer with the cross-seed reduction;
    // per-seed results are bit-identical to scalar runs, so `replications: 1`
    // (or absent) staying on the classic single-run path below is a latency
    // choice, not a semantic one — bodies stay byte-identical either way.
    if s.replications > 1 {
        let batch = ReplicationBatch::new(builder, s.replications)
            .map_err(|e| ApiError::unprocessable(e.to_string()))?
            .precompiled(solved.table.clone());
        let seeds = batch.seeds();
        let report = batch
            .run(solved.policy.as_ref(), &|_| recharge_process(sc.recharge()))
            .map_err(|e| ApiError::unprocessable(e.to_string()))?;
        let mut obj = JsonObject::with_type("simulate");
        obj.field_str("policy", sc.policy().name());
        obj.field_str("label", &solved.meta.label);
        obj.field_str("dist", sc.dist());
        obj.field_str("recharge", sc.recharge());
        obj.field_u64("slots", report.slots);
        obj.field_u64("seed", s.seed);
        obj.field_usize("replications", report.replications());
        obj.field_u64_array("seeds", &seeds);
        obj.field_u64("events", report.events);
        obj.field_u64("captures", report.captures);
        obj.field_f64("qom", report.qom.mean);
        obj.field_f64("qom_std_dev", report.qom.std_dev);
        let (lo, hi) = report.qom.ci95();
        obj.field_f64_array("qom_ci95", &[lo, hi]);
        obj.field_f64("pooled_qom", report.pooled_qom());
        let per_seed: Vec<f64> = report.reports.iter().map(|r| r.qom()).collect();
        obj.field_f64_array("qom_per_seed", &per_seed);
        obj.field_u64("activations", report.activations);
        obj.field_u64("forced_idle", report.forced_idle);
        obj.field_f64("discharge_rate", report.discharge.mean);
        obj.field_f64("mean_final_fill", report.mean_final_fill);
        if let Some(gap) = report.mean_capture_gap {
            obj.field_f64("mean_capture_gap", gap);
        }
        if !sc.objective().is_default() {
            obj.field_str("objective", sc.objective().name());
            obj.field_f64("mean_age", report.mean_age.mean);
            obj.field_u64("peak_age", report.peak_age);
        }
        obj.field_usize("sensors", sc.sensors());
        return Ok(obj.finish());
    }
    let report = builder
        .run(solved.policy.as_ref(), &mut make_recharge)
        .map_err(|e| ApiError::unprocessable(e.to_string()))?;

    let mut obj = JsonObject::with_type("simulate");
    obj.field_str("policy", sc.policy().name());
    obj.field_str("label", &solved.meta.label);
    obj.field_str("dist", sc.dist());
    obj.field_str("recharge", sc.recharge());
    obj.field_u64("slots", report.slots);
    obj.field_u64("seed", s.seed);
    obj.field_u64("events", report.events);
    obj.field_u64("captures", report.captures);
    obj.field_f64("qom", report.qom());
    obj.field_u64("activations", report.total_activations());
    obj.field_u64("forced_idle", report.total_forced_idle());
    obj.field_f64("discharge_rate", report.discharge_rate());
    if !sc.objective().is_default() {
        obj.field_str("objective", sc.objective().name());
        obj.field_f64("mean_age", report.mean_age());
        obj.field_u64("peak_age", report.peak_age);
    }
    obj.field_usize("sensors", sc.sensors());
    if sc.sensors() > 1 {
        obj.field_f64("load_balance", report.load_balance());
    }
    Ok(obj.finish())
}

/// A tiny smoke scenario used by unit tests and the warmup path.
#[cfg(test)]
fn smoke_scenario() -> SolveScenario {
    SolveScenario::from_body(br#"{"dist":"weibull:40,3","e":0.2,"horizon":4096}"#)
        .expect("valid smoke body")
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_obs::{parse_line, JsonValue};

    fn solve(s: &SolveScenario) -> Result<String, ApiError> {
        Ok(render_solve(s, &solve_artifact(&s.scenario)?))
    }

    fn simulate_scenario(s: &SimulateScenario) -> Result<String, ApiError> {
        simulate(s, &solve_artifact(&s.scenario)?)
    }

    #[test]
    fn solve_greedy_round_trips() {
        let body = solve(&smoke_scenario()).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("solve"));
        assert_eq!(v.get("policy").and_then(JsonValue::as_str), Some("greedy"));
        let qom = v.get("ideal_qom").and_then(JsonValue::as_f64).unwrap();
        assert!(qom > 0.0 && qom <= 1.0, "qom = {qom}");
        let coeffs = v.get("coefficients").and_then(JsonValue::as_array).unwrap();
        assert!(!coeffs.is_empty() && coeffs.len() <= 512);
    }

    #[test]
    fn solve_clustering_reports_structure() {
        let s = SolveScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","horizon":4096}"#,
        )
        .unwrap();
        let body = solve(&s).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(
            v.get("policy").and_then(JsonValue::as_str),
            Some("clustering")
        );
        assert!(v.get("n2").and_then(JsonValue::as_f64).is_some());
        assert!(v
            .get("expected_cycle")
            .and_then(JsonValue::as_f64)
            .is_some());
    }

    #[test]
    fn solve_covers_every_policy_family() {
        for name in ["aggressive", "periodic", "myopic"] {
            let body =
                format!(r#"{{"dist":"weibull:40,3","e":0.2,"policy":"{name}","horizon":4096}}"#);
            let s = SolveScenario::from_body(body.as_bytes()).unwrap();
            let out = solve(&s).expect(name);
            let v = parse_line(&out).unwrap();
            assert_eq!(v.get("policy").and_then(JsonValue::as_str), Some(name));
            assert!(
                v.get("label").and_then(JsonValue::as_str).is_some(),
                "{name}"
            );
        }
    }

    #[test]
    fn simulate_runs_and_round_trips() {
        let s = SimulateScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"slots":20000,"seed":7,"horizon":4096}"#,
            1_000_000,
        )
        .unwrap();
        let body = simulate_scenario(&s).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("simulate"));
        assert_eq!(v.get("slots").and_then(JsonValue::as_f64), Some(20_000.0));
        let qom = v.get("qom").and_then(JsonValue::as_f64).unwrap();
        assert!(qom > 0.0 && qom <= 1.0, "qom = {qom}");
    }

    #[test]
    fn batched_simulate_reports_cross_seed_statistics() {
        let body = br#"{"dist":"weibull:40,3","e":0.2,"slots":10000,"seed":7,"horizon":4096,"replications":5}"#;
        let s = SimulateScenario::from_body(body, 1_000_000).unwrap();
        let out = simulate_scenario(&s).unwrap();
        let v = parse_line(&out).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("simulate"));
        assert_eq!(v.get("replications").and_then(JsonValue::as_f64), Some(5.0));
        let per_seed = v.get("qom_per_seed").and_then(JsonValue::as_array).unwrap();
        assert_eq!(per_seed.len(), 5);
        let ci = v.get("qom_ci95").and_then(JsonValue::as_array).unwrap();
        let (lo, hi) = (ci[0].as_f64().unwrap(), ci[1].as_f64().unwrap());
        let mean = v.get("qom").and_then(JsonValue::as_f64).unwrap();
        assert!(lo <= mean && mean <= hi, "{lo} ≤ {mean} ≤ {hi}");

        // Seed 0 of the batch is the base seed: its QoM equals the classic
        // single-run response for the same scenario.
        let single = SimulateScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"slots":10000,"seed":7,"horizon":4096}"#,
            1_000_000,
        )
        .unwrap();
        let single_out = simulate_scenario(&single).unwrap();
        let sv = parse_line(&single_out).unwrap();
        assert_eq!(
            per_seed[0].as_f64(),
            sv.get("qom").and_then(JsonValue::as_f64),
            "batch seed 0 must reproduce the single run"
        );
    }

    #[test]
    fn age_objectives_surface_in_both_response_bodies() {
        // Default bodies carry no objective fields at all…
        let default_solve = solve(&smoke_scenario()).unwrap();
        assert!(!default_solve.contains("\"objective\""));
        // …while an age objective names itself and reports natural units.
        let s = SolveScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","objective":"aoi-mean","horizon":4096}"#,
        )
        .unwrap();
        let v = parse_line(&solve(&s).unwrap()).unwrap();
        assert_eq!(
            v.get("objective").and_then(JsonValue::as_str),
            Some("aoi-mean")
        );
        let value = v
            .get("objective_value")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert!(value.is_finite() && value > 0.0, "mean age = {value}");

        for replications in ["", r#","replications":3"#] {
            let body = format!(
                r#"{{"dist":"weibull:40,3","e":0.2,"objective":"aoi-peak","slots":10000,"seed":7,"horizon":4096{replications}}}"#
            );
            let s = SimulateScenario::from_body(body.as_bytes(), 1_000_000).unwrap();
            let v = parse_line(&simulate_scenario(&s).unwrap()).unwrap();
            assert_eq!(
                v.get("objective").and_then(JsonValue::as_str),
                Some("aoi-peak")
            );
            let mean = v.get("mean_age").and_then(JsonValue::as_f64).unwrap();
            let peak = v.get("peak_age").and_then(JsonValue::as_f64).unwrap();
            assert!(mean >= 0.0 && peak >= mean, "mean {mean} peak {peak}");
        }
    }

    #[test]
    fn identical_scenarios_serialize_identically() {
        // The cache stores serialized bodies; determinism is what makes a
        // replayed hit indistinguishable from a recompute.
        let a = solve(&smoke_scenario()).unwrap();
        let b = solve(&smoke_scenario()).unwrap();
        assert_eq!(a, b);
    }
}
