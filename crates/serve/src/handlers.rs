//! Scenario execution: the actual solves and simulations behind the API.
//!
//! Handlers return the serialized JSON response body (a `String`) so the
//! cache can store responses directly — a cache hit replays bytes without
//! re-serializing, and hit/miss bodies are identical by construction.

use evcap_core::{
    ActivationPolicy, ClusteringOptimizer, EnergyBudget, GreedyPolicy, SlotAssignment,
};
use evcap_energy::{ConsumptionModel, Energy};
use evcap_obs::JsonObject;
use evcap_sim::{ReplicationBatch, Simulation};

use crate::scenario::{ApiError, SimulateScenario, SolvePolicy, SolveScenario};

/// Most activation coefficients included in a solve response (the full
/// vector can be 10⁶ entries; clients wanting more lower the horizon).
const MAX_COEFFICIENTS: usize = 512;

fn consumption(s: &SolveScenario) -> Result<ConsumptionModel, ApiError> {
    ConsumptionModel::new(Energy::from_units(s.delta1), Energy::from_units(s.delta2))
        .map_err(|e| ApiError::unprocessable(e.to_string()))
}

/// Runs the optimization a `/v1/solve` scenario asks for and serializes the
/// activation policy plus its analytic performance.
///
/// # Errors
///
/// [`ApiError`] 400 for specs that fail domain validation at parse time,
/// 422 for scenarios the optimizer rejects (e.g. an infeasible budget).
pub fn solve(s: &SolveScenario) -> Result<String, ApiError> {
    let pmf = evcap_spec::parse_dist(&s.dist, s.horizon)?;
    let consumption = consumption(s)?;
    let budget = EnergyBudget::per_slot(s.e);

    let mut obj = JsonObject::with_type("solve");
    obj.field_str("policy", s.policy.name());
    obj.field_str("dist", &s.dist);
    obj.field_f64("e", s.e);
    obj.field_f64("mean_gap", pmf.mean());
    match s.policy {
        SolvePolicy::Greedy => {
            let policy = GreedyPolicy::optimize(&pmf, budget, &consumption)
                .map_err(|e| ApiError::unprocessable(e.to_string()))?;
            obj.field_str("label", &policy.label());
            obj.field_f64("ideal_qom", policy.ideal_qom());
            obj.field_f64("discharge_rate", policy.discharge_rate());
            let n = pmf.horizon().min(MAX_COEFFICIENTS);
            let coeffs: Vec<f64> = (1..=n).map(|i| policy.coefficient(i)).collect();
            obj.field_f64_array("coefficients", &coeffs);
            obj.field_usize("coefficients_shown", n);
        }
        SolvePolicy::Clustering => {
            let (policy, eval) = ClusteringOptimizer::new(budget)
                .optimize(&pmf, &consumption)
                .map_err(|e| ApiError::unprocessable(e.to_string()))?;
            obj.field_str("label", &policy.label());
            obj.field_f64("ideal_qom", eval.capture_probability);
            obj.field_f64("discharge_rate", eval.discharge_rate);
            obj.field_f64("expected_cycle", eval.expected_cycle);
            obj.field_usize("n1", policy.n1());
            obj.field_usize("n2", policy.n2());
            obj.field_usize("n3", policy.n3());
            let (q1, q2, q3) = policy.boundary_coefficients();
            obj.field_f64_array("boundary_coefficients", &[q1, q2, q3]);
        }
    }
    Ok(obj.finish())
}

/// Runs the bounded, seeded simulation a `/v1/simulate` scenario asks for
/// and serializes the resulting [`evcap_sim::SimReport`].
///
/// # Errors
///
/// As [`solve`], plus 422 for simulation setups the engine rejects.
pub fn simulate(s: &SimulateScenario) -> Result<String, ApiError> {
    let pmf = evcap_spec::parse_dist(&s.solve.dist, s.solve.horizon)?;
    let consumption = consumption(&s.solve)?;
    // Coordinated fleets pool energy: the policy is computed at N·e,
    // matching `evcap simulate`.
    let aggregate = EnergyBudget::per_slot(s.solve.e * s.sensors as f64);
    let policy: Box<dyn ActivationPolicy + Sync> = match s.solve.policy {
        SolvePolicy::Greedy => Box::new(
            GreedyPolicy::optimize(&pmf, aggregate, &consumption)
                .map_err(|e| ApiError::unprocessable(e.to_string()))?,
        ),
        SolvePolicy::Clustering => Box::new(
            ClusteringOptimizer::new(aggregate)
                .optimize(&pmf, &consumption)
                .map_err(|e| ApiError::unprocessable(e.to_string()))?
                .0,
        ),
    };
    // Canonicalization validated name/arity/finiteness but not parameter
    // domains (e.g. a Bernoulli probability > 1), so parse once up front to
    // turn domain failures into a 422 before any sensor asks for a process.
    evcap_spec::parse_recharge(&s.recharge).map_err(|e| ApiError::unprocessable(e.to_string()))?;
    let mut make_recharge =
        |_: usize| evcap_spec::parse_recharge(&s.recharge).expect("validated above");
    let mut builder = Simulation::builder(&pmf)
        .slots(s.slots)
        .seed(s.seed)
        .sensors(s.sensors)
        .consumption(consumption)
        .battery(Energy::from_units(s.k));
    builder = if s.rotating {
        builder.assignment(SlotAssignment::RoundRobin)
    } else {
        builder.independent()
    };
    // Batched requests run the replication engine and answer with the
    // cross-seed reduction; `replications: 1` (or absent) stays on the
    // classic single-run path below, byte-identical to previous releases.
    if s.replications > 1 {
        let batch = ReplicationBatch::new(builder, s.replications)
            .map_err(|e| ApiError::unprocessable(e.to_string()))?;
        let seeds = batch.seeds();
        let report = batch
            .run(policy.as_ref(), &|_| {
                evcap_spec::parse_recharge(&s.recharge).expect("validated above")
            })
            .map_err(|e| ApiError::unprocessable(e.to_string()))?;
        let mut obj = JsonObject::with_type("simulate");
        obj.field_str("policy", s.solve.policy.name());
        obj.field_str("label", &policy.label());
        obj.field_str("dist", &s.solve.dist);
        obj.field_str("recharge", &s.recharge);
        obj.field_u64("slots", report.slots);
        obj.field_u64("seed", s.seed);
        obj.field_usize("replications", report.replications());
        obj.field_u64_array("seeds", &seeds);
        obj.field_u64("events", report.events);
        obj.field_u64("captures", report.captures);
        obj.field_f64("qom", report.qom.mean);
        obj.field_f64("qom_std_dev", report.qom.std_dev);
        let (lo, hi) = report.qom.ci95();
        obj.field_f64_array("qom_ci95", &[lo, hi]);
        obj.field_f64("pooled_qom", report.pooled_qom());
        let per_seed: Vec<f64> = report.reports.iter().map(|r| r.qom()).collect();
        obj.field_f64_array("qom_per_seed", &per_seed);
        obj.field_u64("activations", report.activations);
        obj.field_u64("forced_idle", report.forced_idle);
        obj.field_f64("discharge_rate", report.discharge.mean);
        obj.field_f64("mean_final_fill", report.mean_final_fill);
        if let Some(gap) = report.mean_capture_gap {
            obj.field_f64("mean_capture_gap", gap);
        }
        obj.field_usize("sensors", s.sensors);
        return Ok(obj.finish());
    }
    let report = builder
        .run(policy.as_ref(), &mut make_recharge)
        .map_err(|e| ApiError::unprocessable(e.to_string()))?;

    let mut obj = JsonObject::with_type("simulate");
    obj.field_str("policy", s.solve.policy.name());
    obj.field_str("label", &policy.label());
    obj.field_str("dist", &s.solve.dist);
    obj.field_str("recharge", &s.recharge);
    obj.field_u64("slots", report.slots);
    obj.field_u64("seed", s.seed);
    obj.field_u64("events", report.events);
    obj.field_u64("captures", report.captures);
    obj.field_f64("qom", report.qom());
    obj.field_u64("activations", report.total_activations());
    obj.field_u64("forced_idle", report.total_forced_idle());
    obj.field_f64("discharge_rate", report.discharge_rate());
    obj.field_usize("sensors", s.sensors);
    if s.sensors > 1 {
        obj.field_f64("load_balance", report.load_balance());
    }
    Ok(obj.finish())
}

/// A tiny smoke scenario used by unit tests and the warmup path.
#[cfg(test)]
fn smoke_scenario() -> SolveScenario {
    SolveScenario::from_body(br#"{"dist":"weibull:40,3","e":0.2,"horizon":4096}"#)
        .expect("valid smoke body")
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_obs::{parse_line, JsonValue};

    #[test]
    fn solve_greedy_round_trips() {
        let body = solve(&smoke_scenario()).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("solve"));
        assert_eq!(v.get("policy").and_then(JsonValue::as_str), Some("greedy"));
        let qom = v.get("ideal_qom").and_then(JsonValue::as_f64).unwrap();
        assert!(qom > 0.0 && qom <= 1.0, "qom = {qom}");
        let coeffs = v.get("coefficients").and_then(JsonValue::as_array).unwrap();
        assert!(!coeffs.is_empty() && coeffs.len() <= 512);
    }

    #[test]
    fn solve_clustering_reports_structure() {
        let s = SolveScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","horizon":4096}"#,
        )
        .unwrap();
        let body = solve(&s).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(
            v.get("policy").and_then(JsonValue::as_str),
            Some("clustering")
        );
        assert!(v.get("n2").and_then(JsonValue::as_f64).is_some());
        assert!(v
            .get("expected_cycle")
            .and_then(JsonValue::as_f64)
            .is_some());
    }

    #[test]
    fn simulate_runs_and_round_trips() {
        let s = SimulateScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"slots":20000,"seed":7,"horizon":4096}"#,
            1_000_000,
        )
        .unwrap();
        let body = simulate(&s).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("simulate"));
        assert_eq!(v.get("slots").and_then(JsonValue::as_f64), Some(20_000.0));
        let qom = v.get("qom").and_then(JsonValue::as_f64).unwrap();
        assert!(qom > 0.0 && qom <= 1.0, "qom = {qom}");
    }

    #[test]
    fn batched_simulate_reports_cross_seed_statistics() {
        let body = br#"{"dist":"weibull:40,3","e":0.2,"slots":10000,"seed":7,"horizon":4096,"replications":5}"#;
        let s = SimulateScenario::from_body(body, 1_000_000).unwrap();
        let out = simulate(&s).unwrap();
        let v = parse_line(&out).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("simulate"));
        assert_eq!(v.get("replications").and_then(JsonValue::as_f64), Some(5.0));
        let per_seed = v.get("qom_per_seed").and_then(JsonValue::as_array).unwrap();
        assert_eq!(per_seed.len(), 5);
        let ci = v.get("qom_ci95").and_then(JsonValue::as_array).unwrap();
        let (lo, hi) = (ci[0].as_f64().unwrap(), ci[1].as_f64().unwrap());
        let mean = v.get("qom").and_then(JsonValue::as_f64).unwrap();
        assert!(lo <= mean && mean <= hi, "{lo} ≤ {mean} ≤ {hi}");

        // Seed 0 of the batch is the base seed: its QoM equals the classic
        // single-run response for the same scenario.
        let single = SimulateScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"slots":10000,"seed":7,"horizon":4096}"#,
            1_000_000,
        )
        .unwrap();
        let single_out = simulate(&single).unwrap();
        let sv = parse_line(&single_out).unwrap();
        assert_eq!(
            per_seed[0].as_f64(),
            sv.get("qom").and_then(JsonValue::as_f64),
            "batch seed 0 must reproduce the single run"
        );
    }

    #[test]
    fn identical_scenarios_serialize_identically() {
        // The cache stores serialized bodies; determinism is what makes a
        // replayed hit indistinguishable from a recompute.
        let a = solve(&smoke_scenario()).unwrap();
        let b = solve(&smoke_scenario()).unwrap();
        assert_eq!(a, b);
    }
}
