//! Scenario execution: the actual solves and simulations behind the API.
//!
//! Handlers return the serialized JSON response body (a `String`) so the
//! cache can store responses directly — a cache hit replays bytes without
//! re-serializing, and hit/miss bodies are identical by construction.

use evcap_core::{
    ActivationPolicy, ClusteringOptimizer, EnergyBudget, GreedyPolicy, SlotAssignment,
};
use evcap_energy::{ConsumptionModel, Energy};
use evcap_obs::JsonObject;
use evcap_sim::Simulation;

use crate::scenario::{ApiError, SimulateScenario, SolvePolicy, SolveScenario};

/// Most activation coefficients included in a solve response (the full
/// vector can be 10⁶ entries; clients wanting more lower the horizon).
const MAX_COEFFICIENTS: usize = 512;

fn consumption(s: &SolveScenario) -> Result<ConsumptionModel, ApiError> {
    ConsumptionModel::new(Energy::from_units(s.delta1), Energy::from_units(s.delta2))
        .map_err(|e| ApiError::unprocessable(e.to_string()))
}

/// Runs the optimization a `/v1/solve` scenario asks for and serializes the
/// activation policy plus its analytic performance.
///
/// # Errors
///
/// [`ApiError`] 400 for specs that fail domain validation at parse time,
/// 422 for scenarios the optimizer rejects (e.g. an infeasible budget).
pub fn solve(s: &SolveScenario) -> Result<String, ApiError> {
    let pmf = evcap_spec::parse_dist(&s.dist, s.horizon)?;
    let consumption = consumption(s)?;
    let budget = EnergyBudget::per_slot(s.e);

    let mut obj = JsonObject::with_type("solve");
    obj.field_str("policy", s.policy.name());
    obj.field_str("dist", &s.dist);
    obj.field_f64("e", s.e);
    obj.field_f64("mean_gap", pmf.mean());
    match s.policy {
        SolvePolicy::Greedy => {
            let policy = GreedyPolicy::optimize(&pmf, budget, &consumption)
                .map_err(|e| ApiError::unprocessable(e.to_string()))?;
            obj.field_str("label", &policy.label());
            obj.field_f64("ideal_qom", policy.ideal_qom());
            obj.field_f64("discharge_rate", policy.discharge_rate());
            let n = pmf.horizon().min(MAX_COEFFICIENTS);
            let coeffs: Vec<f64> = (1..=n).map(|i| policy.coefficient(i)).collect();
            obj.field_f64_array("coefficients", &coeffs);
            obj.field_usize("coefficients_shown", n);
        }
        SolvePolicy::Clustering => {
            let (policy, eval) = ClusteringOptimizer::new(budget)
                .optimize(&pmf, &consumption)
                .map_err(|e| ApiError::unprocessable(e.to_string()))?;
            obj.field_str("label", &policy.label());
            obj.field_f64("ideal_qom", eval.capture_probability);
            obj.field_f64("discharge_rate", eval.discharge_rate);
            obj.field_f64("expected_cycle", eval.expected_cycle);
            obj.field_usize("n1", policy.n1());
            obj.field_usize("n2", policy.n2());
            obj.field_usize("n3", policy.n3());
            let (q1, q2, q3) = policy.boundary_coefficients();
            obj.field_f64_array("boundary_coefficients", &[q1, q2, q3]);
        }
    }
    Ok(obj.finish())
}

/// Runs the bounded, seeded simulation a `/v1/simulate` scenario asks for
/// and serializes the resulting [`evcap_sim::SimReport`].
///
/// # Errors
///
/// As [`solve`], plus 422 for simulation setups the engine rejects.
pub fn simulate(s: &SimulateScenario) -> Result<String, ApiError> {
    let pmf = evcap_spec::parse_dist(&s.solve.dist, s.solve.horizon)?;
    let consumption = consumption(&s.solve)?;
    // Coordinated fleets pool energy: the policy is computed at N·e,
    // matching `evcap simulate`.
    let aggregate = EnergyBudget::per_slot(s.solve.e * s.sensors as f64);
    let policy: Box<dyn ActivationPolicy> = match s.solve.policy {
        SolvePolicy::Greedy => Box::new(
            GreedyPolicy::optimize(&pmf, aggregate, &consumption)
                .map_err(|e| ApiError::unprocessable(e.to_string()))?,
        ),
        SolvePolicy::Clustering => Box::new(
            ClusteringOptimizer::new(aggregate)
                .optimize(&pmf, &consumption)
                .map_err(|e| ApiError::unprocessable(e.to_string()))?
                .0,
        ),
    };
    // Canonicalization validated name/arity/finiteness but not parameter
    // domains (e.g. a Bernoulli probability > 1), so parse once up front to
    // turn domain failures into a 422 before any sensor asks for a process.
    evcap_spec::parse_recharge(&s.recharge).map_err(|e| ApiError::unprocessable(e.to_string()))?;
    let mut make_recharge =
        |_: usize| evcap_spec::parse_recharge(&s.recharge).expect("validated above");
    let mut builder = Simulation::builder(&pmf)
        .slots(s.slots)
        .seed(s.seed)
        .sensors(s.sensors)
        .consumption(consumption)
        .battery(Energy::from_units(s.k));
    builder = if s.rotating {
        builder.assignment(SlotAssignment::RoundRobin)
    } else {
        builder.independent()
    };
    let report = builder
        .run(policy.as_ref(), &mut make_recharge)
        .map_err(|e| ApiError::unprocessable(e.to_string()))?;

    let mut obj = JsonObject::with_type("simulate");
    obj.field_str("policy", s.solve.policy.name());
    obj.field_str("label", &policy.label());
    obj.field_str("dist", &s.solve.dist);
    obj.field_str("recharge", &s.recharge);
    obj.field_u64("slots", report.slots);
    obj.field_u64("seed", s.seed);
    obj.field_u64("events", report.events);
    obj.field_u64("captures", report.captures);
    obj.field_f64("qom", report.qom());
    obj.field_u64("activations", report.total_activations());
    obj.field_u64("forced_idle", report.total_forced_idle());
    obj.field_f64("discharge_rate", report.discharge_rate());
    obj.field_usize("sensors", s.sensors);
    if s.sensors > 1 {
        obj.field_f64("load_balance", report.load_balance());
    }
    Ok(obj.finish())
}

/// A tiny smoke scenario used by unit tests and the warmup path.
#[cfg(test)]
fn smoke_scenario() -> SolveScenario {
    SolveScenario::from_body(br#"{"dist":"weibull:40,3","e":0.2,"horizon":4096}"#)
        .expect("valid smoke body")
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_obs::{parse_line, JsonValue};

    #[test]
    fn solve_greedy_round_trips() {
        let body = solve(&smoke_scenario()).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("solve"));
        assert_eq!(v.get("policy").and_then(JsonValue::as_str), Some("greedy"));
        let qom = v.get("ideal_qom").and_then(JsonValue::as_f64).unwrap();
        assert!(qom > 0.0 && qom <= 1.0, "qom = {qom}");
        let coeffs = v.get("coefficients").and_then(JsonValue::as_array).unwrap();
        assert!(!coeffs.is_empty() && coeffs.len() <= 512);
    }

    #[test]
    fn solve_clustering_reports_structure() {
        let s = SolveScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"policy":"clustering","horizon":4096}"#,
        )
        .unwrap();
        let body = solve(&s).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(
            v.get("policy").and_then(JsonValue::as_str),
            Some("clustering")
        );
        assert!(v.get("n2").and_then(JsonValue::as_f64).is_some());
        assert!(v
            .get("expected_cycle")
            .and_then(JsonValue::as_f64)
            .is_some());
    }

    #[test]
    fn simulate_runs_and_round_trips() {
        let s = SimulateScenario::from_body(
            br#"{"dist":"weibull:40,3","e":0.2,"slots":20000,"seed":7,"horizon":4096}"#,
            1_000_000,
        )
        .unwrap();
        let body = simulate(&s).unwrap();
        let v = parse_line(&body).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("simulate"));
        assert_eq!(v.get("slots").and_then(JsonValue::as_f64), Some(20_000.0));
        let qom = v.get("qom").and_then(JsonValue::as_f64).unwrap();
        assert!(qom > 0.0 && qom <= 1.0, "qom = {qom}");
    }

    #[test]
    fn identical_scenarios_serialize_identically() {
        // The cache stores serialized bodies; determinism is what makes a
        // replayed hit indistinguishable from a recompute.
        let a = solve(&smoke_scenario()).unwrap();
        let b = solve(&smoke_scenario()).unwrap();
        assert_eq!(a, b);
    }
}
