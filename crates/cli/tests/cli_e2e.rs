//! End-to-end tests of the `evcap` binary.

use std::process::Command;

fn evcap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_evcap"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = evcap().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
    // No args behaves like help.
    let (ok, stdout, _) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn hazards_prints_table() {
    let (ok, stdout, _) = run(&["hazards", "--dist", "weibull:8,3", "--max-state", "5"]);
    assert!(ok);
    assert!(stdout.contains("Weibull(8, 3)"));
    assert!(stdout.contains("beta_i"));
    assert_eq!(
        stdout
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .count(),
        5
    );
}

#[test]
fn optimize_greedy_reports_qom() {
    let (ok, stdout, _) = run(&["optimize", "--dist", "weibull:8,3", "--e", "0.5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("ideal QoM"));
    assert!(stdout.contains("greedy-FI"));
}

#[test]
fn audit_certifies_each_family() {
    for policy in ["greedy", "clustering", "aggressive", "periodic", "myopic"] {
        let (ok, stdout, stderr) = run(&[
            "audit",
            "--dist",
            "weibull:8,3",
            "--e",
            "0.3",
            "--policy",
            policy,
            "--horizon",
            "2048",
        ]);
        assert!(ok, "{policy}: {stdout}{stderr}");
        assert!(stdout.contains("verdict: CERTIFIED"), "{policy}: {stdout}");
        assert!(stdout.contains("coefficient-range"), "{policy}: {stdout}");
    }
}

#[test]
fn audit_json_is_flat_and_clean() {
    let (ok, stdout, _) = run(&[
        "audit",
        "--dist",
        "exp:0.1",
        "--e",
        "0.2",
        "--format",
        "json",
        "--horizon",
        "2048",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with("{\"type\":\"audit\""), "{stdout}");
    assert!(stdout.contains("\"clean\":true"), "{stdout}");
    assert!(stdout.contains("\"failed\":0"), "{stdout}");

    let (ok, _, stderr) = run(&[
        "audit", "--dist", "exp:0.1", "--e", "0.2", "--format", "xml",
    ]);
    assert!(!ok);
    assert!(stderr.contains("format"), "{stderr}");
}

#[test]
fn simulate_small_run_succeeds() {
    let (ok, stdout, _) = run(&[
        "simulate",
        "--dist",
        "weibull:8,3",
        "--policy",
        "greedy",
        "--e",
        "0.5",
        "--slots",
        "20000",
        "--seed",
        "1",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("QoM"));
    assert!(stdout.contains("captured"));
}

const SIM_ARGS: &[&str] = &[
    "simulate",
    "--dist",
    "weibull:8,3",
    "--policy",
    "greedy",
    "--e",
    "0.5",
    "--slots",
    "20000",
    "--seed",
    "1",
];

#[test]
fn simulate_replications_summarizes_and_keeps_single_run_output_stable() {
    use evcap_obs::{parse_line, JsonValue};

    // `--replications 1` is byte-identical to the flag being absent.
    let (ok, plain, _) = run(SIM_ARGS);
    assert!(ok);
    let mut one = SIM_ARGS.to_vec();
    one.extend(["--replications", "1"]);
    let (ok, with_one, _) = run(&one);
    assert!(ok);
    assert_eq!(plain, with_one, "--replications 1 must not change output");

    // A batched run prints the cross-seed summary plus one line per seed,
    // and seed 0 reproduces the single run's QoM.
    let single_qom = plain
        .lines()
        .find_map(|l| l.strip_prefix("QoM          : "))
        .expect("single run prints QoM")
        .trim()
        .to_owned();
    let mut batch = SIM_ARGS.to_vec();
    batch.extend(["--replications", "4"]);
    let (ok, stdout, _) = run(&batch);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("× 4 replications"), "{stdout}");
    assert!(stdout.contains("95% CI over 4 seeds"), "{stdout}");
    assert_eq!(stdout.matches("\n  rep ").count(), 4, "{stdout}");
    assert!(
        stdout.contains(&format!("qom {single_qom}")),
        "seed 0 line must carry the single-run QoM {single_qom}:\n{stdout}"
    );

    // JSON format parses and reports per-seed entries.
    let mut json_args = batch.clone();
    json_args.extend(["--format", "json"]);
    let (ok, stdout, _) = run(&json_args);
    assert!(ok, "{stdout}");
    let v = parse_line(stdout.trim()).expect("valid JSON");
    assert_eq!(v.get("replications").and_then(JsonValue::as_f64), Some(4.0));
    assert_eq!(
        v.get("reports")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::len),
        Some(4)
    );

    // Zero replications is a usage error.
    let mut zero = SIM_ARGS.to_vec();
    zero.extend(["--replications", "0"]);
    let (ok, _, stderr) = run(&zero);
    assert!(!ok);
    assert!(stderr.contains("replications"), "{stderr}");
}

#[test]
fn bench_sim_writes_throughput_json() {
    let path = std::env::temp_dir().join("evcap_e2e_bench_sim.json");
    let path_str = path.to_str().unwrap();
    let (ok, stdout, _) = run(&[
        "bench-sim",
        "--slots",
        "5000",
        "--replications",
        "3",
        "--threads-list",
        "1,2",
        "--out",
        path_str,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("deterministic: yes"), "{stdout}");
    let doc = std::fs::read_to_string(&path).expect("bench file written");
    assert!(
        doc.contains("\"deterministic_across_threads\": true"),
        "{doc}"
    );
    assert!(doc.contains("\"threads_available\""), "{doc}");
    assert!(doc.contains("\"speedup_vs_sequential\""), "{doc}");
    // The summed per-thread engine time is reported as `cpu_seconds`
    // (throughput itself is wall-based; the old `sim_seconds` name is gone).
    assert!(doc.contains("\"cpu_seconds\""), "{doc}");
    assert!(!doc.contains("\"sim_seconds\""), "{doc}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_obs_out_writes_parseable_jsonl() {
    use evcap_obs::{parse_line, JsonValue};

    let path = std::env::temp_dir().join("evcap_e2e_obs.jsonl");
    let path_str = path.to_str().unwrap();
    let mut args = SIM_ARGS.to_vec();
    args.extend(["--obs-out", path_str, "--obs-window", "1000"]);
    let (ok, stdout, _) = run(&args);
    assert!(ok, "{stdout}");
    // The summary table follows the classic report.
    assert!(stdout.contains("observability summary"));
    assert!(stdout.contains("wrote "));

    let text = std::fs::read_to_string(&path).unwrap();
    let mut types = std::collections::BTreeSet::new();
    let mut qom_windows = 0;
    for line in text.lines() {
        let record = parse_line(line).expect("every line parses");
        let t = record
            .get("type")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_owned();
        if t == "qom_window" {
            qom_windows += 1;
            assert!(record.get("window_qom").is_some());
            assert!(record.get("cumulative_qom").is_some());
        }
        types.insert(t);
    }
    std::fs::remove_file(&path).ok();
    assert_eq!(qom_windows, 20, "20000 slots / 1000-slot windows");
    for expected in [
        "run_counters",
        "qom_window",
        "battery_histogram",
        "gap_histogram",
        "forced_idle",
        "span",
        "counter",
    ] {
        assert!(types.contains(expected), "missing {expected}: {types:?}");
    }
}

#[test]
fn quiet_obs_run_keeps_classic_stdout() {
    let (ok, plain, _) = run(SIM_ARGS);
    assert!(ok);

    let path = std::env::temp_dir().join("evcap_e2e_obs_quiet.jsonl");
    let mut args = SIM_ARGS.to_vec();
    args.extend(["--obs-out", path.to_str().unwrap(), "--quiet"]);
    let (ok, quiet, _) = run(&args);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    // --quiet drops the summary; what remains is byte-identical to a plain
    // run, so scripts scraping the classic output keep working.
    assert_eq!(plain, quiet);
}

#[test]
fn verbose_reports_timing_on_stderr_only() {
    let (ok, plain, _) = run(SIM_ARGS);
    assert!(ok);
    let mut args = SIM_ARGS.to_vec();
    args.push("--verbose");
    let (ok, stdout, stderr) = run(&args);
    assert!(ok);
    assert_eq!(plain, stdout, "verbose must not touch stdout");
    assert!(stderr.contains("span sim.run"), "{stderr}");
    assert!(stderr.contains("counter sim.slots"), "{stderr}");
}

#[test]
fn trace_summarizes_an_obs_file() {
    let path = std::env::temp_dir().join("evcap_e2e_trace.jsonl");
    let path_str = path.to_str().unwrap().to_owned();
    let mut args = SIM_ARGS.to_vec();
    args.extend(["--obs-out", &path_str, "--quiet"]);
    let (ok, _, _) = run(&args);
    assert!(ok);

    let (ok, stdout, _) = run(&["trace", &path_str]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("qom convergence"));
    assert!(stdout.contains("battery: mean fill"));
    assert!(stdout.contains("capture gaps:"));

    let (ok, stdout, _) = run(&["trace", &path_str, "--kind", "spans"]);
    assert!(ok);
    assert!(stdout.contains("span "));
    assert!(!stdout.contains("battery:"));

    let (ok, _, stderr) = run(&["trace", &path_str, "--kind", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown kind"));
    std::fs::remove_file(&path).ok();

    let (ok, _, stderr) = run(&["trace", "/nonexistent/evcap.jsonl"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
}

#[test]
fn trace_tree_renders_span_hierarchies() {
    // A hand-built access log: one traced request (root -> spec.solve ->
    // clustering.search, plus a cache mark) and one for another trace id.
    let path = std::env::temp_dir().join("evcap_e2e_trace_tree.jsonl");
    let path_str = path.to_str().unwrap().to_owned();
    let log = concat!(
        r#"{"type":"request","method":"POST","path":"/v1/solve","status":200,"micros":900.0,"trace_id":"req-a"}"#,
        "\n",
        r#"{"type":"trace_span","trace_id":"req-a","span_id":1,"parent_id":0,"name":"POST /v1/solve","start_us":0.0,"dur_us":900.0}"#,
        "\n",
        r#"{"type":"trace_span","trace_id":"req-a","span_id":2,"parent_id":1,"name":"spec.solve","start_us":10.0,"dur_us":800.0}"#,
        "\n",
        r#"{"type":"trace_span","trace_id":"req-a","span_id":3,"parent_id":2,"name":"clustering.search","start_us":20.0,"dur_us":700.0}"#,
        "\n",
        r#"{"type":"trace_span","trace_id":"req-a","span_id":4,"parent_id":1,"name":"cache.solve","label":"miss","start_us":850.0,"dur_us":0.0}"#,
        "\n",
        r#"{"type":"trace_span","trace_id":"req-b","span_id":1,"parent_id":0,"name":"GET /healthz","start_us":0.0,"dur_us":50.0}"#,
        "\n",
    );
    std::fs::write(&path, log).expect("fixture written");

    let (ok, stdout, _) = run(&["trace", &path_str, "--tree"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("trace req-a (4 spans)"), "{stdout}");
    assert!(stdout.contains("trace req-b (1 spans)"), "{stdout}");
    // Depth is encoded as indentation: root at 2 spaces, children nested.
    assert!(stdout.contains("\n  POST /v1/solve"), "{stdout}");
    assert!(stdout.contains("\n    spec.solve"), "{stdout}");
    assert!(stdout.contains("\n      clustering.search"), "{stdout}");
    assert!(stdout.contains("cache.solve [miss]"), "{stdout}");

    // --trace-id narrows to one request.
    let (ok, stdout, _) = run(&["trace", &path_str, "--tree", "--trace-id", "req-b"]);
    assert!(ok);
    assert!(stdout.contains("req-b"), "{stdout}");
    assert!(!stdout.contains("req-a"), "{stdout}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn unknown_flag_fails() {
    let (ok, _, stderr) = run(&["hazards", "--dist", "weibull:8,3", "--bogus", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn invalid_spec_fails_with_context() {
    let (ok, _, stderr) = run(&["hazards", "--dist", "weibull:8"]);
    assert!(!ok);
    assert!(stderr.contains("weibull:8"));
}

#[test]
fn missing_required_flag_fails() {
    let (ok, _, stderr) = run(&["optimize", "--dist", "weibull:8,3"]);
    assert!(!ok);
    assert!(stderr.contains("--e"));
}

#[test]
fn serve_boots_answers_and_drains_on_sigterm() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let mut child = evcap()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("server starts");
    // The first stdout line announces the bound (ephemeral) address.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("server prints its address")
        .expect("readable stdout");
    let addr = first
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .trim()
        .parse()
        .expect("valid socket address");

    let timeout = std::time::Duration::from_secs(10);
    let health = evcap_serve::client::get(addr, "/healthz", timeout).expect("GET /healthz");
    assert_eq!(health.status, 200);
    let solve = evcap_serve::client::post(
        addr,
        "/v1/solve",
        br#"{"dist":"exp:0.05","e":0.2,"horizon":2048}"#,
        timeout,
    )
    .expect("POST /v1/solve");
    assert_eq!(solve.status, 200, "{}", solve.text());
    assert_eq!(solve.cache.as_deref(), Some("miss"));

    // SIGTERM → graceful drain → exit code 0.
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // SAFETY: signaling our own child process.
    unsafe {
        kill(child.id() as i32, 15);
    }
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server must exit cleanly on SIGTERM");
}

#[test]
fn loadgen_reports_throughput_against_a_live_server() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let mut child = evcap()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server starts");
    let stdout = child.stdout.take().expect("piped stdout");
    let first = BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner")
        .expect("readable");
    let addr = first
        .strip_prefix("listening on http://")
        .expect("banner")
        .trim()
        .to_owned();

    let (ok, stdout, stderr) = run(&[
        "loadgen",
        "--addr",
        &addr,
        "--concurrency",
        "2",
        "--requests",
        "400",
    ]);
    let _ = child.kill();
    let _ = child.wait();
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("400 ok, 0 errors"), "{stdout}");
    assert!(stdout.contains("req/s"), "{stdout}");
    // The perf module reported the run on stderr.
    assert!(stderr.contains("# perf loadgen /v1/solve"), "{stderr}");
}
