//! End-to-end tests of the `evcap` binary.

use std::process::Command;

fn evcap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_evcap"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = evcap().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
    // No args behaves like help.
    let (ok, stdout, _) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn hazards_prints_table() {
    let (ok, stdout, _) = run(&["hazards", "--dist", "weibull:8,3", "--max-state", "5"]);
    assert!(ok);
    assert!(stdout.contains("Weibull(8, 3)"));
    assert!(stdout.contains("beta_i"));
    assert_eq!(stdout.lines().filter(|l| l.trim_start().starts_with(char::is_numeric)).count(), 5);
}

#[test]
fn optimize_greedy_reports_qom() {
    let (ok, stdout, _) = run(&["optimize", "--dist", "weibull:8,3", "--e", "0.5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("ideal QoM"));
    assert!(stdout.contains("greedy-FI"));
}

#[test]
fn simulate_small_run_succeeds() {
    let (ok, stdout, _) = run(&[
        "simulate",
        "--dist",
        "weibull:8,3",
        "--policy",
        "greedy",
        "--e",
        "0.5",
        "--slots",
        "20000",
        "--seed",
        "1",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("QoM"));
    assert!(stdout.contains("captured"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn unknown_flag_fails() {
    let (ok, _, stderr) = run(&["hazards", "--dist", "weibull:8,3", "--bogus", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn invalid_spec_fails_with_context() {
    let (ok, _, stderr) = run(&["hazards", "--dist", "weibull:8"]);
    assert!(!ok);
    assert!(stderr.contains("weibull:8"));
}

#[test]
fn missing_required_flag_fails() {
    let (ok, _, stderr) = run(&["optimize", "--dist", "weibull:8,3"]);
    assert!(!ok);
    assert!(stderr.contains("--e"));
}
