//! `evcap serve` and `evcap loadgen` — the daemon and its load generator.

use std::error::Error;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use evcap_bench::perf;
use evcap_serve::{client::Conn, server::ServeConfig, signal, Server};
use evcap_sim::parallel::parallel_map;

use crate::args::{Args, ArgsError};

type CmdResult = Result<(), Box<dyn Error>>;

/// `evcap serve` — run the policy server until SIGINT/SIGTERM.
pub fn serve(args: &Args) -> CmdResult {
    args.expect_only(&[
        "addr",
        "threads",
        "cache-cap",
        "shards",
        "read-timeout-ms",
        "coalesce-timeout-ms",
        "max-slots",
        "access-log",
        "validate",
        "trace",
        "recent",
        "slow-ms",
        "store",
    ])?;
    let config = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7070").to_owned(),
        threads: args.get_or("threads", 4usize, "a thread count")?.max(1),
        cache_cap: args.get_or("cache-cap", 1024usize, "an entry count")?,
        shards: args.get_or("shards", 8usize, "a shard count")?,
        read_timeout: Duration::from_millis(args.get_or(
            "read-timeout-ms",
            5_000u64,
            "milliseconds",
        )?),
        coalesce_timeout: Duration::from_millis(args.get_or(
            "coalesce-timeout-ms",
            30_000u64,
            "milliseconds",
        )?),
        max_slots: args.get_or("max-slots", 2_000_000u64, "a slot count")?,
        access_log: args.get("access-log").map(str::to_owned),
        validate_artifacts: args.get_or("validate", false, "true or false")?,
        trace: args.get_or("trace", true, "true or false")?,
        recent: args.get_or("recent", 64usize, "a request count")?,
        slow_ms: args.get_or("slow-ms", 0u64, "milliseconds (0 disables)")?,
        store: args.get("store").map(str::to_owned),
        ..ServeConfig::default()
    };
    signal::install();
    let threads = config.threads;
    let server = Server::start(config)?;
    // The smoke script and the e2e tests scrape this exact line for the
    // bound port, so `--addr 127.0.0.1:0` works with ephemeral ports.
    println!("listening on http://{}", server.local_addr());
    println!("threads: {threads}  (stop with SIGINT/SIGTERM)");
    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("signal received, draining");
    let stats = server.solve_cache_stats();
    let recent = server.recent_requests();
    server.shutdown();
    eprintln!(
        "solve cache: {} hits, {} misses, {} coalesced, {} evictions",
        stats.hits, stats.misses, stats.coalesced, stats.evictions
    );
    // The flight recorder's tail: one line per retained request, oldest
    // first, so a drained server leaves a trail of what it just served.
    if !recent.is_empty() {
        eprintln!("last {} requests:", recent.len());
        for r in &recent {
            eprintln!("  {}", r.summary());
        }
    }
    Ok(())
}

/// `evcap loadgen` — hammer a running server over keep-alive connections
/// and report throughput and latency percentiles through the perf module.
pub fn loadgen(args: &Args) -> CmdResult {
    args.expect_only(&[
        "addr",
        "concurrency",
        "requests",
        "path",
        "body",
        "timeout-ms",
        "hist-out",
    ])?;
    let raw_addr = args.require("addr")?;
    let addr: SocketAddr = raw_addr.parse().map_err(|_| ArgsError::Invalid {
        flag: "addr".into(),
        value: raw_addr.into(),
        expected: "a socket address like 127.0.0.1:7070",
    })?;
    let concurrency: usize = args.get_or("concurrency", 2usize, "a worker count")?.max(1);
    let requests: u64 = args.get_or("requests", 10_000u64, "a request count")?;
    let timeout = Duration::from_millis(args.get_or("timeout-ms", 5_000u64, "milliseconds")?);
    let path = args.get("path").unwrap_or("/v1/solve").to_owned();
    let body = args
        .get("body")
        .unwrap_or(r#"{"dist":"weibull:40,3","e":0.2,"horizon":4096}"#)
        .as_bytes()
        .to_vec();
    let method = if path.starts_with("/v1/") {
        "POST"
    } else {
        "GET"
    };

    // Workers are I/O-bound connection loops, so oversubscribing cores is
    // the point: pin `parallel_map`'s pool to the requested concurrency.
    let saved_threads = std::env::var("EVCAP_THREADS").ok();
    std::env::set_var("EVCAP_THREADS", concurrency.to_string());
    let shares: Vec<u64> = (0..concurrency as u64)
        .map(|w| requests / concurrency as u64 + u64::from(w < requests % concurrency as u64))
        .collect();
    let wall = Instant::now(); // tidy:allow(instant-now): loadgen measures request latency directly
    let per_worker = parallel_map(shares, |share| {
        let mut samples: Vec<u64> = Vec::with_capacity(share as usize);
        let mut errors = 0u64;
        let mut conn = match Conn::connect(addr, timeout) {
            Ok(c) => c,
            Err(_) => return (samples, share),
        };
        for _ in 0..share {
            let start = Instant::now(); // tidy:allow(instant-now): loadgen measures request latency directly
            match conn.request(method, &path, &body) {
                Ok(resp) if (200..300).contains(&resp.status) => {
                    samples.push(start.elapsed().as_nanos() as u64);
                }
                Ok(_) => errors += 1,
                Err(_) => {
                    errors += 1;
                    // The server (or an idle timeout) dropped us: reconnect
                    // once; if that also fails, the remaining share is lost.
                    match Conn::connect(addr, timeout) {
                        Ok(c) => conn = c,
                        Err(_) => {
                            errors += share - (samples.len() as u64 + errors);
                            break;
                        }
                    }
                }
            }
        }
        (samples, errors)
    });
    let wall_seconds = wall.elapsed().as_secs_f64();
    match saved_threads {
        Some(v) => std::env::set_var("EVCAP_THREADS", v),
        None => std::env::remove_var("EVCAP_THREADS"),
    }

    let mut samples: Vec<u64> = Vec::with_capacity(requests as usize);
    let mut errors = 0u64;
    for (s, e) in per_worker {
        samples.extend(s);
        errors += e;
    }
    // `--hist-out` dumps the full latency distribution in the same
    // `latency_histogram` JSONL schema the server's exposition uses, so
    // client-side and server-side histograms line up bucket for bucket.
    if let Some(hist_path) = args.get("hist-out") {
        let hist = evcap_obs::LatencyHistogram::new();
        for &ns in &samples {
            hist.observe_ns(ns);
        }
        let mut sink = evcap_obs::JsonlSink::create(hist_path)?;
        sink.write(hist.record_buckets(&format!("loadgen {path}")))?;
    }

    let summary = perf::LatencySummary::from_samples_ns(&mut samples, errors, wall_seconds);
    let label = format!("loadgen {path}");
    perf::report_loadgen(&label, &summary);
    println!(
        "requests     : {} ok, {} errors ({concurrency} connections)",
        summary.count, summary.errors
    );
    println!("throughput   : {:.0} req/s", summary.requests_per_second());
    println!(
        "latency      : mean {:.0} µs, p50 {:.0} µs, p90 {:.0} µs, p99 {:.0} µs, max {:.0} µs",
        summary.mean_us, summary.p50_us, summary.p90_us, summary.p99_us, summary.max_us
    );
    if summary.count == 0 {
        return Err(format!("no successful requests against {addr}").into());
    }
    Ok(())
}
