//! `evcap` — command-line interface to the event-capture library.
//!
//! Run `evcap help` for usage, or see the repository README.

#![forbid(unsafe_code)]

mod args;
mod commands;
mod fleet;
mod json;
mod serving;
mod spec;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
