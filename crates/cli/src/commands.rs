//! CLI subcommand implementations.

use std::error::Error;

use evcap_bench::{runners, Scale};
use evcap_core::{
    ActivationPolicy, AggressivePolicy, ClusteringOptimizer, EnergyBudget, EvalOptions,
    GreedyPolicy, MyopicPolicy, PeriodicPolicy, SlotAssignment,
};
use evcap_energy::{ConsumptionModel, Energy};
use evcap_sim::{
    recommend_capacity, run_adaptive_greedy, AdaptiveConfig, Simulation, SizingOptions,
};

use crate::args::{Args, ArgsError};
use crate::spec;

/// Top-level usage text.
pub const USAGE: &str = "\
evcap — dynamic activation policies for event capture with rechargeable sensors

USAGE:
  evcap <command> [--flags]

COMMANDS:
  hazards    print the slotted pmf/hazard table of a distribution
             --dist SPEC [--max-state N] [--horizon H]
  optimize   compute a policy and report its analytic performance
             --dist SPEC --e RATE [--policy greedy|clustering|myopic]
             [--delta1 X] [--delta2 Y] [--horizon H]
  simulate   run a policy against a finite-battery simulation
             --dist SPEC --policy greedy|clustering|aggressive|periodic|myopic
             [--e RATE] [--recharge SPEC] [--slots N] [--seed S] [--k CAP]
             [--sensors N] [--coordination rotating|independent] [--horizon H]
             [--format text|json]
  provision  find the smallest battery that reaches a target QoM
             --dist SPEC --target QOM [--policy greedy|clustering]
             [--e RATE] [--recharge SPEC] [--slots N] [--max-k CAP]
  adaptive   learn the event process online and re-optimize per episode
             --dist SPEC --e RATE [--episodes N] [--episode-slots N]
  figure     regenerate a paper figure (fig3a fig3b fig4a fig4b fig5a fig5b
             fig6a fig6b) or ablation (regions load-balance refined
             coordination outage)   [--quick true] [--svg out.svg]
  help       show this message

SPECS:
  distributions: weibull:40,3  pareto:2,10  exp:0.05  erlang:4,0.2
                 uniform:10,30  det:7  hyperexp:0.4,0.5,0.05  markov:0.7,0.8
  recharge:      bernoulli:0.5,1  periodic:5,10  constant:0.5  uniformrand:0,1
";

type CmdResult = Result<(), Box<dyn Error>>;

fn consumption_from(args: &Args) -> Result<ConsumptionModel, Box<dyn Error>> {
    let d1: f64 = args.get_or("delta1", 1.0, "an energy amount")?;
    let d2: f64 = args.get_or("delta2", 6.0, "an energy amount")?;
    Ok(ConsumptionModel::new(
        Energy::from_units(d1),
        Energy::from_units(d2),
    )?)
}

/// `evcap hazards`
pub fn hazards(args: &Args) -> CmdResult {
    args.expect_only(&["dist", "max-state", "horizon"])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let pmf = spec::parse_dist(args.require("dist")?, horizon)?;
    let default_max = pmf.horizon().min(64);
    let max_state: usize = args.get_or("max-state", default_max, "a state count")?;
    println!("distribution : {}", pmf.label());
    println!("mean gap μ   : {:.4} slots", pmf.mean());
    println!("horizon      : {} explicit slots (tail mass {:.3e}, tail hazard {:.4})",
        pmf.horizon(), pmf.tail_mass(), pmf.tail_hazard());
    println!();
    println!("{:>6} {:>12} {:>12} {:>12}", "slot", "alpha_i", "F(i)", "beta_i");
    for i in 1..=max_state {
        println!(
            "{i:>6} {:>12.6} {:>12.6} {:>12.6}",
            pmf.pmf(i),
            pmf.cdf(i),
            pmf.hazard(i)
        );
    }
    Ok(())
}

/// `evcap optimize`
pub fn optimize(args: &Args) -> CmdResult {
    args.expect_only(&["dist", "e", "policy", "delta1", "delta2", "horizon"])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let pmf = spec::parse_dist(args.require("dist")?, horizon)?;
    let raw_e = args.require("e")?;
    let e: f64 = raw_e.parse().map_err(|_| ArgsError::Invalid {
        flag: "e".into(),
        value: raw_e.into(),
        expected: "a recharge rate",
    })?;
    let budget = EnergyBudget::per_slot(e);
    let consumption = consumption_from(args)?;
    let which = args.get("policy").unwrap_or("greedy");
    println!("distribution : {} (μ = {:.3})", pmf.label(), pmf.mean());
    println!("budget       : e = {e} units/slot ({:.3} per renewal)", e * pmf.mean());
    match which {
        "greedy" => {
            let policy = GreedyPolicy::optimize(&pmf, budget, &consumption)?;
            println!("policy       : {}", policy.label());
            println!("ideal QoM    : {:.4}", policy.ideal_qom());
            println!("discharge    : {:.4} units/slot", policy.discharge_rate());
            let first = (1..=pmf.horizon()).find(|&i| policy.coefficient(i) > 0.0);
            if let Some(first) = first {
                println!(
                    "structure    : first active state {first} (c = {:.4})",
                    policy.coefficient(first)
                );
            }
        }
        "clustering" => {
            let (policy, eval) = ClusteringOptimizer::new(budget).optimize(&pmf, &consumption)?;
            println!("policy       : {}", policy.label());
            println!("ideal QoM    : {:.4}", eval.capture_probability);
            println!("discharge    : {:.4} units/slot", eval.discharge_rate);
            println!("capture cycle: {:.2} slots", eval.expected_cycle);
        }
        "myopic" => {
            let window = (4.0 * pmf.mean()).ceil() as usize;
            let policy =
                MyopicPolicy::derive(&pmf, budget, &consumption, window, EvalOptions::default())?;
            println!("policy       : {}", policy.label());
            println!("ideal QoM    : {:.4}", policy.evaluation().capture_probability);
            println!("discharge    : {:.4} units/slot", policy.evaluation().discharge_rate);
        }
        other => return Err(format!("unknown policy `{other}` for optimize").into()),
    }
    Ok(())
}

/// `evcap simulate`
pub fn simulate(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist",
        "policy",
        "e",
        "recharge",
        "slots",
        "seed",
        "k",
        "sensors",
        "coordination",
        "delta1",
        "delta2",
        "horizon",
        "theta1",
        "format",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let pmf = spec::parse_dist(args.require("dist")?, horizon)?;
    let slots: u64 = args.get_or("slots", 1_000_000, "a slot count")?;
    let seed: u64 = args.get_or("seed", 2012, "an integer")?;
    let k: f64 = args.get_or("k", 1000.0, "a battery capacity")?;
    let sensors: usize = args.get_or("sensors", 1, "a sensor count")?;
    let consumption = consumption_from(args)?;

    // Recharge: explicit spec, or Bernoulli(0.5, 2e) derived from --e.
    let recharge_spec = match (args.get("recharge"), args.get("e")) {
        (Some(spec), _) => spec.to_owned(),
        (None, Some(e)) => {
            let e: f64 = e.parse().map_err(|_| ArgsError::Invalid {
                flag: "e".into(),
                value: e.into(),
                expected: "a recharge rate",
            })?;
            format!("bernoulli:0.5,{}", 2.0 * e)
        }
        (None, None) => return Err("pass --e RATE or --recharge SPEC".into()),
    };
    let probe = spec::parse_recharge(&recharge_spec)?;
    let e = match args.get("e") {
        Some(raw) => raw.parse().map_err(|_| ArgsError::Invalid {
            flag: "e".into(),
            value: raw.into(),
            expected: "a recharge rate",
        })?,
        None => probe.mean_rate(),
    };
    // Coordinated fleets pool energy: policies are computed at N·e.
    let aggregate = EnergyBudget::per_slot(e * sensors as f64);

    let which = args.require("policy")?;
    let policy: Box<dyn ActivationPolicy> = match which {
        "greedy" => Box::new(GreedyPolicy::optimize(&pmf, aggregate, &consumption)?),
        "clustering" => {
            Box::new(ClusteringOptimizer::new(aggregate).optimize(&pmf, &consumption)?.0)
        }
        "aggressive" => Box::new(AggressivePolicy::new()),
        "periodic" => {
            let theta1: u64 = args.get_or("theta1", 3, "a slot count")?;
            Box::new(PeriodicPolicy::energy_balanced(
                theta1,
                aggregate,
                pmf.mean(),
                &consumption,
            )?)
        }
        "myopic" => {
            let window = (4.0 * pmf.mean()).ceil() as usize;
            Box::new(MyopicPolicy::derive(
                &pmf,
                aggregate,
                &consumption,
                window,
                EvalOptions::default(),
            )?)
        }
        other => return Err(format!("unknown policy `{other}` for simulate").into()),
    };

    let mut builder = Simulation::builder(&pmf)
        .slots(slots)
        .seed(seed)
        .sensors(sensors)
        .consumption(consumption)
        .battery(Energy::from_units(k));
    match args.get("coordination").unwrap_or("rotating") {
        "rotating" => builder = builder.assignment(SlotAssignment::RoundRobin),
        "independent" => builder = builder.independent(),
        other => return Err(format!("unknown coordination `{other}`").into()),
    }
    let report = builder.run(policy.as_ref(), &mut |_| {
        spec::parse_recharge(&recharge_spec).expect("validated above")
    })?;

    match args.get("format").unwrap_or("text") {
        "json" => println!("{}", crate::json::sim_report(&report)),
        "text" => {
            println!("policy       : {}", policy.label());
            println!("recharge     : {recharge_spec} (e = {e:.4}/sensor)");
            println!("slots        : {slots}  (seed {seed}, K = {k}, N = {sensors})");
            println!("events       : {}", report.events);
            println!("captured     : {}", report.captures);
            println!("QoM          : {:.4}", report.qom());
            println!("activations  : {}", report.total_activations());
            println!("forced idle  : {}", report.total_forced_idle());
            println!("discharge    : {:.4} units/slot (fleet)", report.discharge_rate());
            if sensors > 1 {
                println!("load balance : {:.4}", report.load_balance());
            }
        }
        other => return Err(format!("unknown format `{other}` (try text, json)").into()),
    }
    Ok(())
}

/// `evcap provision`
pub fn provision(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist", "target", "policy", "e", "recharge", "slots", "max-k", "seed", "horizon",
        "delta1", "delta2",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let pmf = spec::parse_dist(args.require("dist")?, horizon)?;
    let raw_target = args.require("target")?;
    let target: f64 = raw_target.parse().map_err(|_| ArgsError::Invalid {
        flag: "target".into(),
        value: raw_target.into(),
        expected: "a QoM in (0, 1]",
    })?;
    let consumption = consumption_from(args)?;
    let recharge_spec = match (args.get("recharge"), args.get("e")) {
        (Some(spec), _) => spec.to_owned(),
        (None, Some(e)) => format!("bernoulli:0.5,{}", 2.0 * e.parse::<f64>().unwrap_or(0.5)),
        (None, None) => return Err("pass --e RATE or --recharge SPEC".into()),
    };
    let e = spec::parse_recharge(&recharge_spec)?.mean_rate();
    let budget = EnergyBudget::per_slot(e);
    let policy: Box<dyn ActivationPolicy> = match args.get("policy").unwrap_or("greedy") {
        "greedy" => Box::new(GreedyPolicy::optimize(&pmf, budget, &consumption)?),
        "clustering" => {
            Box::new(ClusteringOptimizer::new(budget).optimize(&pmf, &consumption)?.0)
        }
        other => return Err(format!("unknown policy `{other}` for provision").into()),
    };
    let opts = SizingOptions {
        slots: args.get_or("slots", 200_000, "a slot count")?,
        max_capacity: args.get_or("max-k", 4_096.0, "a capacity")?,
        seed: args.get_or("seed", 1, "an integer")?,
        ..SizingOptions::default()
    };
    let rec = recommend_capacity(&pmf, policy.as_ref(), &mut |_| {
        spec::parse_recharge(&recharge_spec).expect("validated above")
    }, target, opts)?;
    println!("policy       : {}", policy.label());
    println!("recharge     : {recharge_spec} (e = {e:.4})");
    println!("target QoM   : {target}");
    println!("recommended K: {} energy units", rec.capacity);
    println!(
        "achieved QoM : {:.4} ± {:.4} (95% CI over {} runs)",
        rec.achieved.mean,
        rec.achieved.half_width(1.96),
        rec.achieved.n
    );
    Ok(())
}

/// `evcap adaptive`
pub fn adaptive(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist", "e", "episodes", "episode-slots", "seed", "k", "horizon", "delta1", "delta2",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let pmf = spec::parse_dist(args.require("dist")?, horizon)?;
    let raw_e = args.require("e")?;
    let e: f64 = raw_e.parse().map_err(|_| ArgsError::Invalid {
        flag: "e".into(),
        value: raw_e.into(),
        expected: "a recharge rate",
    })?;
    let consumption = consumption_from(args)?;
    let config = AdaptiveConfig {
        episodes: args.get_or("episodes", 6, "an episode count")?,
        episode_slots: args.get_or("episode-slots", 50_000, "a slot count")?,
        seed: args.get_or("seed", 7, "an integer")?,
        capacity: Energy::from_units(args.get_or("k", 1000.0, "a capacity")?),
        ..AdaptiveConfig::default()
    };
    let report = run_adaptive_greedy(
        &pmf,
        EnergyBudget::per_slot(e),
        &consumption,
        &mut |_| {
            Box::new(
                evcap_energy::BernoulliRecharge::new(0.5, Energy::from_units(2.0 * e))
                    .expect("valid"),
            )
        },
        config,
    )?;
    let oracle = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption)?;
    println!("{:>8} {:>8} {:>9} {:>8}  policy", "episode", "events", "captured", "QoM");
    for ep in &report.episodes {
        println!(
            "{:>8} {:>8} {:>9} {:>8.4}  {}",
            ep.episode,
            ep.events,
            ep.captures,
            ep.qom(),
            ep.policy
        );
    }
    println!();
    println!("oracle ideal QoM (true distribution known): {:.4}", oracle.ideal_qom());
    Ok(())
}

/// `evcap figure`
pub fn figure(args: &Args) -> CmdResult {
    args.expect_only(&["quick", "svg", "format"])?;
    let quick: bool = args.get_or("quick", false, "true or false")?;
    let scale = if quick { Scale::quick() } else { Scale::paper() };
    let Some(id) = args.positional().first() else {
        return Err("pass a figure id, e.g. `evcap figure fig4a`".into());
    };
    let figures = match id.as_str() {
        "fig3a" => vec![runners::fig3a(scale)],
        "fig3b" => vec![runners::fig3b(scale)],
        "fig4a" => vec![runners::fig4a(scale)],
        "fig4b" => vec![runners::fig4b(scale)],
        "fig5a" => vec![runners::fig5(scale, runners::Fig5Panel::LowB)],
        "fig5b" => vec![runners::fig5(scale, runners::Fig5Panel::HighB)],
        "fig6a" => vec![runners::fig6a(scale)],
        "fig6b" => vec![runners::fig6b(scale)],
        "regions" => vec![runners::ablation_clustering_regions(scale)],
        "load-balance" => vec![runners::ablation_load_balance(scale)],
        "refined" => vec![
            runners::ablation_refined_convergence(scale),
            runners::ablation_refined_weibull40(scale),
        ],
        "coordination" => vec![runners::ablation_coordination(scale)],
        "outage" => vec![runners::ablation_outage_robustness(scale)],
        other => return Err(format!("unknown figure `{other}`").into()),
    };
    match args.get("format").unwrap_or("text") {
        "json" => {
            for fig in &figures {
                println!("{}", crate::json::figure(fig));
            }
        }
        "text" => {
            for fig in &figures {
                println!("{fig}");
            }
        }
        other => return Err(format!("unknown format `{other}` (try text, json)").into()),
    }
    if let Some(path) = args.get("svg") {
        // Multi-panel ids get a numeric suffix per panel.
        for (i, fig) in figures.iter().enumerate() {
            let target = if figures.len() == 1 {
                path.to_owned()
            } else {
                match path.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}-{}.{ext}", i + 1),
                    None => format!("{path}-{}", i + 1),
                }
            };
            std::fs::write(&target, evcap_bench::svg::render(fig))?;
            eprintln!("wrote {target}");
        }
    }
    Ok(())
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> CmdResult {
    match args.command() {
        Some("hazards") => hazards(args),
        Some("optimize") => optimize(args),
        Some("simulate") => simulate(args),
        Some("provision") => provision(args),
        Some("adaptive") => adaptive(args),
        Some("figure") => figure(args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `evcap help`").into()),
    }
}
