//! CLI subcommand implementations.

use std::error::Error;

use evcap_bench::{runners, Scale};
use evcap_core::{ActivationPolicy, EnergyBudget, PolicyTable, SlotAssignment};
use evcap_energy::Energy;
use evcap_sim::{
    recommend_capacity, run_adaptive_greedy, AdaptiveConfig, ReplicationBatch, Simulation,
    SizingOptions,
};

use crate::args::{Args, ArgsError};
use crate::spec;

/// Top-level usage text.
pub const USAGE: &str = "\
evcap — dynamic activation policies for event capture with rechargeable sensors

USAGE:
  evcap <command> [--flags]

COMMANDS:
  hazards    print the slotted pmf/hazard table of a distribution
             --dist SPEC [--max-state N] [--horizon H]
  optimize   compute a policy and report its analytic performance
             --dist SPEC --e RATE
             [--policy greedy|clustering|aggressive|periodic|myopic]
             [--objective qom|aoi-mean|aoi-peak]
             [--theta1 N] [--delta1 X] [--delta2 Y] [--horizon H]
  audit      solve a scenario and certify the artifact against the paper's
             analytic invariants (exit 1 on violation)
             --dist SPEC --e RATE
             [--policy greedy|clustering|aggressive|periodic|myopic]
             [--objective qom|aoi-mean|aoi-peak]
             [--theta1 N] [--delta1 X] [--delta2 Y] [--horizon H]
             [--sensors N] [--format text|json]
  simulate   run a policy against a finite-battery simulation
             --dist SPEC --policy greedy|clustering|aggressive|periodic|myopic
             [--e RATE] [--recharge SPEC] [--slots N] [--seed S] [--k CAP]
             [--sensors N] [--coordination rotating|independent] [--horizon H]
             [--objective qom|aoi-mean|aoi-peak] report capture-age metrics
             [--replications R] [--format text|json]
             [--obs-out FILE.jsonl] [--obs-window N]
  provision  find the smallest battery that reaches a target QoM
             --dist SPEC --target QOM
             [--policy greedy|clustering|aggressive|periodic|myopic]
             [--e RATE] [--recharge SPEC] [--slots N] [--max-k CAP]
  adaptive   learn the event process online and re-optimize per episode
             --dist SPEC --e RATE [--episodes N] [--episode-slots N]
  figure     regenerate a paper figure (fig3a fig3b fig4a fig4b fig5a fig5b
             fig6a fig6b) or ablation (regions load-balance refined
             coordination outage objectives)   [--quick true] [--svg out.svg]
  trace      summarize an observability JSONL file written by --obs-out,
             EVCAP_PERF_LOG, or serve --access-log
             FILE.jsonl [--kind all|counters|qom|battery|gaps|idle|spans|perf]
             [--tree] render per-request span trees from trace_span records
             [--trace-id ID] narrow --tree to one request
  bench-sim  measure engine throughput: single run, sequential replication
             loop, and batched replications at several thread counts
             [--dist SPEC] [--slots N] [--replications R]
             [--threads-list 1,4,8] [--seed S] [--k CAP] [--out FILE.json]
  solve-fleet
             batch-solve a scenario matrix into a persistent artifact store;
             each (dist, policy) group runs in ascending-e order so every
             clustering solve warm-starts from its predecessor's optimum
             --store DIR --dists \"SPEC;SPEC;...\" --e-list R1,R2,...
             [--policies greedy,clustering,...] [--theta1 N] [--delta1 X]
             [--delta2 Y] [--horizon H] [--sensors N] [--threads N]
             [--objective qom|aoi-mean|aoi-peak]
             [--force true]  re-solve scenarios already stored
  store      inspect or maintain a persistent artifact store
             <ls|stat|verify|compact> --store DIR
  serve      run the policy server (POST /v1/solve, POST /v1/simulate,
             GET /healthz, GET /metrics, GET /debug/recent) until
             SIGINT/SIGTERM
             [--addr HOST:PORT] [--threads N] [--cache-cap N] [--shards N]
             [--read-timeout-ms MS] [--coalesce-timeout-ms MS]
             [--max-slots N] [--access-log FILE.jsonl]
             [--validate true]  audit artifacts before caching (500 on
             violation)
             [--trace false]  disable per-request span collection
             [--recent N]  flight-recorder capacity (default 64)
             [--slow-ms MS]  dump span trees of slow requests (0 = off)
             [--store DIR]  persistent artifact tier between the in-memory
             cache and a fresh solve (loads are certified before reuse)
  loadgen    benchmark a running server over keep-alive connections
             --addr HOST:PORT [--concurrency N] [--requests N]
             [--path /v1/solve] [--body JSON] [--timeout-ms MS]
             [--hist-out FILE.jsonl]  dump the latency histogram
  help       show this message

GLOBAL FLAGS:
  --verbose  extra diagnostic notes and timing detail on stderr
  --quiet    suppress informational extras (summary tables, notes)

SPECS:
  distributions: weibull:40,3  pareto:2,10  exp:0.05  erlang:4,0.2
                 uniform:10,30  det:7  hyperexp:0.4,0.5,0.05  markov:0.7,0.8
  recharge:      bernoulli:0.5,1  periodic:5,10  constant:0.5  uniformrand:0,1
";

type CmdResult = Result<(), Box<dyn Error>>;

fn costs_from(args: &Args) -> Result<(f64, f64), Box<dyn Error>> {
    let d1: f64 = args.get_or("delta1", 1.0, "an energy amount")?;
    let d2: f64 = args.get_or("delta2", 6.0, "an energy amount")?;
    Ok((d1, d2))
}

/// Parses `--policy` (and `--theta1` for the periodic family) into the
/// shared [`spec::PolicySpec`] — the single front door to policy
/// construction; the actual solve happens in `evcap_spec::solve`.
fn policy_from(args: &Args, default: &str) -> Result<spec::PolicySpec, Box<dyn Error>> {
    let mut policy = spec::PolicySpec::parse(args.get("policy").unwrap_or(default))?;
    if let spec::PolicySpec::Periodic { theta1 } = &mut policy {
        *theta1 = args.get_or("theta1", 3, "a slot count")?;
    }
    Ok(policy)
}

/// Parses `--objective` (absent means QoM, the paper's capture objective).
fn objective_from(args: &Args) -> Result<spec::Objective, Box<dyn Error>> {
    match args.get("objective") {
        None => Ok(spec::Objective::Qom),
        Some(raw) => Ok(spec::parse_objective(raw)?),
    }
}

/// Prints the per-family analytic summary shared by `optimize`.
fn print_solved(solved: &spec::SolvedPolicy) {
    println!("policy       : {}", solved.meta.label);
    if let Some(qom) = solved.meta.objective {
        println!("ideal QoM    : {qom:.4}");
    }
    if !solved.scenario.objective().is_default() {
        if let Some(value) = solved.meta.objective_value {
            println!(
                "objective    : {} = {value:.4} slots",
                solved.scenario.objective()
            );
        }
    }
    if let Some(rate) = solved.meta.discharge_rate {
        println!("discharge    : {rate:.4} units/slot");
    }
    match solved.scenario.policy() {
        spec::PolicySpec::Greedy => {
            let first = (1..=solved.pmf.horizon()).find(|&i| solved.probability(i) > 0.0);
            if let Some(first) = first {
                println!(
                    "structure    : first active state {first} (c = {:.4})",
                    solved.probability(first)
                );
            }
        }
        spec::PolicySpec::Clustering => {
            if let Some(cycle) = solved.meta.expected_cycle {
                println!("capture cycle: {cycle:.2} slots");
            }
        }
        _ => {}
    }
}

/// `evcap hazards`
pub fn hazards(args: &Args) -> CmdResult {
    args.expect_only(&["dist", "max-state", "horizon"])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let pmf = spec::parse_dist(args.require("dist")?, horizon)?;
    let default_max = pmf.horizon().min(64);
    let max_state: usize = args.get_or("max-state", default_max, "a state count")?;
    println!("distribution : {}", pmf.label());
    println!("mean gap μ   : {:.4} slots", pmf.mean());
    println!(
        "horizon      : {} explicit slots (tail mass {:.3e}, tail hazard {:.4})",
        pmf.horizon(),
        pmf.tail_mass(),
        pmf.tail_hazard()
    );
    println!();
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "slot", "alpha_i", "F(i)", "beta_i"
    );
    for i in 1..=max_state {
        println!(
            "{i:>6} {:>12.6} {:>12.6} {:>12.6}",
            pmf.pmf(i),
            pmf.cdf(i),
            pmf.hazard(i)
        );
    }
    Ok(())
}

/// `evcap optimize`
pub fn optimize(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist",
        "e",
        "policy",
        "theta1",
        "delta1",
        "delta2",
        "horizon",
        "objective",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let dist = args.require("dist")?;
    let raw_e = args.require("e")?;
    let e: f64 = raw_e.parse().map_err(|_| ArgsError::Invalid {
        flag: "e".into(),
        value: raw_e.into(),
        expected: "a recharge rate",
    })?;
    let (delta1, delta2) = costs_from(args)?;
    let scenario = spec::Scenario::new(dist, policy_from(args, "greedy")?, e)?
        .with_costs(delta1, delta2)
        .with_horizon(horizon)
        .with_objective(objective_from(args)?);
    let solved = spec::solve(&scenario)?;
    println!(
        "distribution : {} (μ = {:.3})",
        solved.pmf.label(),
        solved.pmf.mean()
    );
    println!(
        "budget       : e = {e} units/slot ({:.3} per renewal)",
        e * solved.pmf.mean()
    );
    print_solved(&solved);
    Ok(())
}

/// `evcap audit`
pub fn audit(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist",
        "e",
        "policy",
        "theta1",
        "delta1",
        "delta2",
        "horizon",
        "sensors",
        "format",
        "objective",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let sensors: usize = args.get_or("sensors", 1, "a sensor count")?;
    let dist = args.require("dist")?;
    let raw_e = args.require("e")?;
    let e: f64 = raw_e.parse().map_err(|_| ArgsError::Invalid {
        flag: "e".into(),
        value: raw_e.into(),
        expected: "a recharge rate",
    })?;
    let format = args.get("format").unwrap_or("text");
    let (delta1, delta2) = costs_from(args)?;
    let scenario = spec::Scenario::new(dist, policy_from(args, "greedy")?, e)?
        .with_costs(delta1, delta2)
        .with_horizon(horizon)
        .with_sensors(sensors)
        .with_objective(objective_from(args)?);
    let solved = spec::solve(&scenario)?;
    let report = evcap_audit::audit(&scenario, &solved);
    match format {
        "json" => println!("{}", report.to_json()),
        "text" => println!("{report}"),
        other => {
            return Err(ArgsError::Invalid {
                flag: "format".into(),
                value: other.into(),
                expected: "text or json",
            }
            .into())
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        let named: Vec<&str> = report.violations().map(|c| c.invariant).collect();
        Err(format!("audit rejected the artifact ({})", named.join(", ")).into())
    }
}

/// `evcap simulate`
pub fn simulate(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist",
        "policy",
        "e",
        "recharge",
        "slots",
        "seed",
        "k",
        "sensors",
        "coordination",
        "delta1",
        "delta2",
        "horizon",
        "theta1",
        "replications",
        "format",
        "obs-out",
        "obs-window",
        "objective",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let dist = args.require("dist")?;
    let slots: u64 = args.get_or("slots", 1_000_000, "a slot count")?;
    let seed: u64 = args.get_or("seed", 2012, "an integer")?;
    let k: f64 = args.get_or("k", 1000.0, "a battery capacity")?;
    let sensors: usize = args.get_or("sensors", 1, "a sensor count")?;
    let replications: usize = args.get_or("replications", 1, "a replication count")?;
    if replications == 0 {
        return Err(ArgsError::Invalid {
            flag: "replications".into(),
            value: "0".into(),
            expected: "a replication count of at least 1",
        }
        .into());
    }
    let (delta1, delta2) = costs_from(args)?;
    let verbosity = args.verbosity();

    // Observability: --obs-out streams JSONL records; timing spans are
    // collected whenever records will be exported (or shown via --verbose).
    let obs_out = args.get("obs-out");
    let obs_window: u64 = args.get_or("obs-window", 0, "a window length in slots")?;
    if obs_out.is_some() || verbosity == crate::args::Verbosity::Verbose {
        evcap_obs::timing::set_enabled(true);
        evcap_obs::timing::reset();
    }

    // Recharge: explicit spec, or Bernoulli(0.5, 2e) derived from --e.
    let recharge_spec = match (args.get("recharge"), args.get("e")) {
        (Some(spec), _) => spec.to_owned(),
        (None, Some(e)) => {
            let e: f64 = e.parse().map_err(|_| ArgsError::Invalid {
                flag: "e".into(),
                value: e.into(),
                expected: "a recharge rate",
            })?;
            format!("bernoulli:0.5,{}", 2.0 * e)
        }
        (None, None) => return Err("pass --e RATE or --recharge SPEC".into()),
    };
    let probe = spec::parse_recharge(&recharge_spec)?;
    let e = match args.get("e") {
        Some(raw) => raw.parse().map_err(|_| ArgsError::Invalid {
            flag: "e".into(),
            value: raw.into(),
            expected: "a recharge rate",
        })?,
        None => probe.mean_rate(),
    };
    // Coordinated fleets pool energy: the scenario carries the per-sensor
    // rate and sensor count, so `evcap_spec::solve` optimizes at N·e.
    args.require("policy")?;
    let objective = objective_from(args)?;
    let scenario = spec::Scenario::new(dist, policy_from(args, "greedy")?, e)?
        .with_recharge(&recharge_spec)?
        .with_costs(delta1, delta2)
        .with_battery(k)
        .with_horizon(horizon)
        .with_sensors(sensors)
        .with_objective(objective);
    let solved = spec::solve(&scenario)?;
    let policy: &(dyn ActivationPolicy + Sync) = solved.policy.as_ref();
    let pmf = &solved.pmf;

    let mut builder = Simulation::builder(pmf)
        .slots(slots)
        .seed(seed)
        .sensors(sensors)
        .consumption(solved.consumption)
        .battery(Energy::from_units(k));
    match args.get("coordination").unwrap_or("rotating") {
        "rotating" => builder = builder.assignment(SlotAssignment::RoundRobin),
        "independent" => builder = builder.independent(),
        other => return Err(format!("unknown coordination `{other}`").into()),
    }
    // Replicated mode fans the scenario out over the batch engine; the
    // single-replication path below is untouched, so `--replications 1`
    // (or the flag absent) keeps today's output byte for byte.
    if replications > 1 {
        return simulate_replicated(
            builder,
            policy,
            solved.table.clone(),
            &recharge_spec,
            e,
            SimulateShape {
                slots,
                seed,
                k,
                sensors,
                replications,
                objective,
            },
            args,
        );
    }
    let mut make_recharge =
        |_: usize| spec::parse_recharge(&recharge_spec).expect("validated above");
    // Open the sink before simulating so a bad --obs-out path fails fast
    // instead of after a possibly long run.
    let mut obs_sink = obs_out
        .map(|path| {
            evcap_obs::JsonlSink::create(path)
                .map_err(|e| format!("cannot write --obs-out {path}: {e}"))
        })
        .transpose()?;
    let mut obs_suite = obs_out.map(|_| {
        let window = if obs_window > 0 {
            obs_window
        } else {
            // Default: ~100 windows across the horizon, at least 100 slots.
            (slots / 100).max(100)
        };
        evcap_obs::ObsSuite::new(evcap_obs::ObsConfig {
            qom_window: window,
            ..evcap_obs::ObsConfig::default()
        })
    });
    let report = match obs_suite.as_mut() {
        Some(suite) => builder.run_observed(policy, &mut make_recharge, suite)?,
        None => builder.run(policy, &mut make_recharge)?,
    };

    match args.get("format").unwrap_or("text") {
        "json" => println!("{}", crate::json::sim_report(&report, objective)),
        "text" => {
            println!("policy       : {}", policy.label());
            println!("recharge     : {recharge_spec} (e = {e:.4}/sensor)");
            println!("slots        : {slots}  (seed {seed}, K = {k}, N = {sensors})");
            println!("events       : {}", report.events);
            println!("captured     : {}", report.captures);
            println!("QoM          : {:.4}", report.qom());
            println!("activations  : {}", report.total_activations());
            println!("forced idle  : {}", report.total_forced_idle());
            println!(
                "discharge    : {:.4} units/slot (fleet)",
                report.discharge_rate()
            );
            if sensors > 1 {
                println!("load balance : {:.4}", report.load_balance());
            }
            if !objective.is_default() {
                println!("objective    : {objective}");
                println!("mean age     : {:.1} slots", report.mean_age());
                println!("peak age     : {} slots", report.peak_age);
            }
        }
        other => return Err(format!("unknown format `{other}` (try text, json)").into()),
    }

    if let (Some(path), Some(suite), Some(mut sink)) =
        (obs_out, obs_suite.as_mut(), obs_sink.take())
    {
        suite.seal();
        suite.export(&mut sink)?;
        let records = sink.records();
        sink.finish()?;
        if verbosity != crate::args::Verbosity::Quiet {
            println!();
            print!("{}", suite.summary());
            println!("wrote {records} records to {path}");
        }
    } else if verbosity == crate::args::Verbosity::Verbose {
        // No export requested: surface the collected timing on stderr.
        for (name, stats) in evcap_obs::timing::drain_spans() {
            eprintln!(
                "span {name}: {} calls, total {:.3} ms, mean {:.1} µs",
                stats.count,
                stats.total_ns as f64 / 1e6,
                stats.mean_ns() / 1e3
            );
        }
        for (name, value) in evcap_obs::timing::drain_counters() {
            eprintln!("counter {name}: {value}");
        }
    }
    Ok(())
}

/// The scenario dimensions `simulate_replicated` echoes back to the user.
struct SimulateShape {
    slots: u64,
    seed: u64,
    k: f64,
    sensors: usize,
    replications: usize,
    objective: spec::Objective,
}

/// The `--replications N` (N > 1) arm of `evcap simulate`: batch run,
/// cross-seed summary, optional per-seed JSONL export.
fn simulate_replicated(
    builder: Simulation<'_>,
    policy: &(dyn ActivationPolicy + Sync),
    table: Option<PolicyTable>,
    recharge_spec: &str,
    e: f64,
    shape: SimulateShape,
    args: &Args,
) -> CmdResult {
    let verbosity = args.verbosity();
    let obs_out = args.get("obs-out");
    // Open the sink before simulating so a bad --obs-out path fails fast.
    let obs_sink = obs_out
        .map(|path| {
            evcap_obs::JsonlSink::create(path)
                .map_err(|err| format!("cannot write --obs-out {path}: {err}"))
        })
        .transpose()?;
    let batch = ReplicationBatch::new(builder, shape.replications)?.precompiled(table);
    let seeds = batch.seeds();
    let report = batch.run(policy, &|_| {
        spec::parse_recharge(recharge_spec).expect("validated above")
    })?;

    match args.get("format").unwrap_or("text") {
        "json" => println!("{}", crate::json::batch_report(&report, shape.objective)),
        "text" => {
            let SimulateShape {
                slots,
                seed,
                k,
                sensors,
                replications,
                objective,
            } = shape;
            println!("policy       : {}", policy.label());
            println!("recharge     : {recharge_spec} (e = {e:.4}/sensor)");
            println!(
                "slots        : {slots} × {replications} replications  (base seed {seed}, K = {k}, N = {sensors})"
            );
            println!("events       : {} (pooled)", report.events);
            println!("captured     : {} (pooled)", report.captures);
            println!(
                "QoM          : {:.4} ± {:.4} (95% CI over {} seeds)",
                report.qom.mean,
                report.qom.half_width(1.96),
                report.qom.n
            );
            println!("pooled QoM   : {:.4}", report.pooled_qom());
            println!("activations  : {}", report.activations);
            println!("forced idle  : {}", report.forced_idle);
            println!(
                "discharge    : {:.4} ± {:.4} units/slot (fleet)",
                report.discharge.mean,
                report.discharge.half_width(1.96)
            );
            println!("final fill   : {:.4}", report.mean_final_fill);
            if let Some(gap) = report.mean_capture_gap {
                println!("capture gap  : {gap:.1} slots");
            }
            if !objective.is_default() {
                println!("objective    : {objective}");
                println!(
                    "mean age     : {:.1} ± {:.1} slots",
                    report.mean_age.mean,
                    report.mean_age.half_width(1.96)
                );
                println!("peak age     : {} slots", report.peak_age);
            }
            for (i, rep) in report.reports.iter().enumerate() {
                println!(
                    "  rep {i:>3} seed {:>20} : qom {:.4}  events {:>6}  captures {:>6}",
                    seeds[i],
                    rep.qom(),
                    rep.events,
                    rep.captures
                );
            }
        }
        other => return Err(format!("unknown format `{other}` (try text, json)").into()),
    }

    if let (Some(path), Some(mut sink)) = (obs_out, obs_sink) {
        for (i, rep) in report.reports.iter().enumerate() {
            let mut obj = evcap_obs::JsonObject::with_type("replication");
            obj.field_usize("replication", i)
                .field_u64("seed", seeds[i])
                .field_u64("slots", rep.slots)
                .field_u64("events", rep.events)
                .field_u64("captures", rep.captures)
                .field_f64("qom", rep.qom())
                .field_u64("activations", rep.total_activations())
                .field_u64("forced_idle", rep.total_forced_idle())
                .field_f64("discharge_rate", rep.discharge_rate());
            sink.write(obj)?;
        }
        let mut obj = evcap_obs::JsonObject::with_type("batch");
        let (lo, hi) = report.qom.ci95();
        obj.field_usize("replications", report.replications())
            .field_u64("slots", report.slots)
            .field_f64("qom_mean", report.qom.mean)
            .field_f64("qom_std_dev", report.qom.std_dev)
            .field_f64("qom_ci95_lo", lo)
            .field_f64("qom_ci95_hi", hi)
            .field_f64("pooled_qom", report.pooled_qom())
            .field_u64("events", report.events)
            .field_u64("captures", report.captures);
        sink.write(obj)?;
        let records = sink.records();
        sink.finish()?;
        if verbosity != crate::args::Verbosity::Quiet {
            println!();
            println!("wrote {records} records to {path}");
        }
    } else if verbosity == crate::args::Verbosity::Verbose {
        for (name, stats) in evcap_obs::timing::drain_spans() {
            eprintln!(
                "span {name}: {} calls, total {:.3} ms, mean {:.1} µs",
                stats.count,
                stats.total_ns as f64 / 1e6,
                stats.mean_ns() / 1e3
            );
        }
        for (name, value) in evcap_obs::timing::drain_counters() {
            eprintln!("counter {name}: {value}");
        }
    }
    Ok(())
}

/// `evcap bench-sim`
///
/// Seeds the engine's performance trajectory: measures a single run, a
/// truly sequential replication loop (R scalar `Simulation::run` calls with
/// the batch's strided seeds — each rebuilding its event sampler and policy
/// table, exactly what callers did before the batch engine), and the
/// lockstep SoA batch at each requested thread count. Every batched run is
/// checked bit-identical per seed against the scalar loop and across thread
/// counts; an extra phase-timing pass attributes the batch's slot loop to
/// its sweeps. Results land in a small JSON document (`BENCH_sim.json` by
/// default) that CI archives and gates on.
pub fn bench_sim(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist",
        "slots",
        "replications",
        "threads-list",
        "seed",
        "k",
        "out",
    ])?;
    let dist_spec = args.get("dist").unwrap_or("weibull:40,3");
    let slots: u64 = args.get_or("slots", 1_000_000, "a slot count")?;
    let replications: usize = args.get_or("replications", 16, "a replication count")?;
    let seed: u64 = args.get_or("seed", 2012, "an integer")?;
    let k: f64 = args.get_or("k", 1000.0, "a battery capacity")?;
    let out = args.get("out").unwrap_or("BENCH_sim.json");
    let raw_threads = args.get("threads-list").unwrap_or("1,4,8");
    let mut threads_list: Vec<usize> = Vec::new();
    for part in raw_threads.split(',') {
        match part.trim().parse::<usize>() {
            Ok(t) if t > 0 => threads_list.push(t),
            _ => {
                return Err(ArgsError::Invalid {
                    flag: "threads-list".into(),
                    value: raw_threads.into(),
                    expected: "comma-separated positive thread counts, e.g. 1,4,8",
                }
                .into())
            }
        }
    }

    let scenario = spec::Scenario::new(dist_spec, spec::PolicySpec::Greedy, 0.5)?;
    let solved = spec::solve(&scenario)?;
    let policy = solved.policy.as_ref();
    let recharge_spec = "bernoulli:0.5,1";
    let recharge = |_: usize| spec::parse_recharge(recharge_spec).expect("static spec");
    let sim = Simulation::builder(&solved.pmf)
        .slots(slots)
        .seed(seed)
        .consumption(solved.consumption)
        .battery(Energy::from_units(k));
    let threads_available = std::thread::available_parallelism().map_or(1, |p| p.get());

    let perf = |label: &str, result: Option<evcap_bench::Throughput>| {
        result.ok_or_else(|| format!("{label}: engine reported no timing"))
    };

    // 1. One replication, the classic single-run path.
    let (single_res, single_t) = evcap_bench::perf::measured(|| {
        sim.clone().run(policy, &mut |_: usize| {
            spec::parse_recharge(recharge_spec).expect("static spec")
        })
    });
    single_res?;
    let single_t = perf("single", single_t)?;

    // 2. The same R replications truly sequentially: R scalar runs with the
    //    batch's strided seeds, each paying the full per-run setup (event
    //    sampler, policy table) a caller-side loop would pay. These reports
    //    double as the per-seed ground truth for the batch.
    let seeds = ReplicationBatch::new(sim.clone(), replications)
        .expect("replications >= 1")
        .seeds();
    let (seq_res, seq_t) = evcap_bench::perf::measured(|| {
        let mut reports = Vec::with_capacity(replications);
        for &s in &seeds {
            reports.push(sim.clone().seed(s).run(policy, &mut |_: usize| {
                spec::parse_recharge(recharge_spec).expect("static spec")
            }));
        }
        reports.into_iter().collect::<Result<Vec<_>, _>>()
    });
    let scalar_reports = seq_res?;
    let seq_t = perf("sequential", seq_t)?;

    // 3. The SoA batch at each requested thread count, checked bit-identical
    //    per seed against the scalar loop and across thread counts.
    let mut deterministic = true;
    let mut batched = Vec::new();
    let mut reference = None;
    for &threads in &threads_list {
        let (res, t) = evcap_bench::perf::measured(|| {
            ReplicationBatch::new(sim.clone(), replications)
                .expect("replications >= 1")
                .precompiled(solved.table.clone())
                .threads(threads)
                .run(policy, &recharge)
        });
        let report = res?;
        deterministic &= report.reports == scalar_reports;
        match &reference {
            Some(first) => deterministic &= report == *first,
            None => reference = Some(report),
        }
        batched.push((threads, perf("batched", t)?));
    }

    // 4. One phase-attribution pass (single worker, timing inside the slot
    //    loop): where does the batch's time actually go?
    evcap_obs::timing::set_enabled(true);
    evcap_obs::timing::reset();
    let phased_res = ReplicationBatch::new(sim.clone(), replications)
        .expect("replications >= 1")
        .precompiled(solved.table.clone())
        .threads(1)
        .phase_timing(true)
        .run(policy, &recharge);
    let phase_spans = evcap_obs::timing::drain_spans();
    evcap_obs::timing::drain_counters();
    evcap_obs::timing::set_enabled(false);
    phased_res?;
    let phase_ms = |name: &str| -> f64 {
        phase_spans
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0.0, |(_, s)| s.total_ns as f64 / 1e6)
    };
    let (gen_ms, recharge_ms, decide_ms, events_ms) = (
        phase_ms("sim.batch.phase.generate"),
        phase_ms("sim.batch.phase.recharge"),
        phase_ms("sim.batch.phase.decide"),
        phase_ms("sim.batch.phase.events"),
    );

    // The regression gate: at one worker, lockstep batching must not be
    // slower than the scalar loop it replaced (the batch amortizes sampler
    // and table setup and sweeps contiguous lanes).
    let batched_t1_beats_sequential = batched
        .iter()
        .find(|(threads, _)| *threads == 1)
        .is_none_or(|(_, t)| t.wall_seconds <= seq_t.wall_seconds);

    use std::fmt::Write as _;
    let num = crate::json::num;
    let mut doc = String::with_capacity(1024);
    let _ = write!(
        doc,
        "{{\n  \"bench\": \"sim\",\n  \"dist\": \"{dist_spec}\",\n  \"slots\": {slots},\n  \"replications\": {replications},\n  \"seed\": {seed},\n  \"threads_available\": {threads_available},\n  \"deterministic_across_threads\": {deterministic},\n  \"batched_t1_beats_sequential\": {batched_t1_beats_sequential},\n"
    );
    let _ = writeln!(
        doc,
        "  \"phases\": {{\"generate_ms\": {}, \"recharge_ms\": {}, \"decide_ms\": {}, \"events_ms\": {}}},", // tidy:allow(json-fmt): pretty-printed multi-line bench report; keys static, values num()-sanitized
        num(gen_ms),
        num(recharge_ms),
        num(decide_ms),
        num(events_ms),
    );
    // Throughput here is slots per *wall* second: the batched runs sum
    // engine time across worker threads, so a CPU-time rate would not move
    // with the thread count at all. The summed engine time is reported
    // under its honest name, `cpu_seconds`.
    let _ = writeln!(
        doc,
        "  \"single\": {{\"wall_seconds\": {}, \"cpu_seconds\": {}, \"slots_per_second\": {}}},", // tidy:allow(json-fmt): pretty-printed multi-line bench report; keys static, values num()-sanitized
        num(single_t.wall_seconds),
        num(single_t.cpu_seconds),
        num(single_t.wall_slots_per_second()),
    );
    let _ = write!(
        doc,
        "  \"sequential\": {{\"wall_seconds\": {}, \"cpu_seconds\": {}, \"slots_per_second\": {}}},\n  \"batched\": [", // tidy:allow(json-fmt): pretty-printed multi-line bench report; keys static, values num()-sanitized
        num(seq_t.wall_seconds),
        num(seq_t.cpu_seconds),
        num(seq_t.wall_slots_per_second()),
    );
    for (i, (threads, t)) in batched.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        let _ = write!(
            doc,
            "\n    {{\"threads\": {threads}, \"wall_seconds\": {}, \"cpu_seconds\": {}, \"slots_per_second\": {}, \"speedup_vs_sequential\": {}}}", // tidy:allow(json-fmt): pretty-printed multi-line bench report; keys static, values num()-sanitized
            num(t.wall_seconds),
            num(t.cpu_seconds),
            num(t.wall_slots_per_second()),
            num(seq_t.wall_seconds / t.wall_seconds),
        );
    }
    doc.push_str("\n  ]\n}\n");
    std::fs::write(out, &doc).map_err(|err| format!("cannot write {out}: {err}"))?;

    println!(
        "bench-sim    : {dist_spec}, {slots} slots × {replications} replications (seed {seed})"
    );
    println!("threads avail: {threads_available}");
    println!(
        "single run   : {:.2} M slots/s  ({:.3} s wall)",
        single_t.wall_slots_per_second() / 1e6,
        single_t.wall_seconds
    );
    println!(
        "sequential   : {:.3} s wall for {replications} scalar runs",
        seq_t.wall_seconds
    );
    for (threads, t) in &batched {
        println!(
            "batched ×{threads:<4}: {:.3} s wall  (speedup {:.2}x vs sequential)",
            t.wall_seconds,
            seq_t.wall_seconds / t.wall_seconds
        );
    }
    println!(
        "phases (×1)  : generate {gen_ms:.1} ms, recharge {recharge_ms:.1} ms, decide {decide_ms:.1} ms, events {events_ms:.1} ms"
    );
    println!(
        "deterministic: {}",
        if deterministic { "yes" } else { "NO — BUG" }
    );
    println!(
        "t1 vs scalar : {}",
        if batched_t1_beats_sequential {
            "batched >= sequential"
        } else {
            "batched SLOWER than sequential"
        }
    );
    if threads_available == 1 {
        println!("note         : only 1 CPU available; parallel speedups are not observable here");
    }
    println!("wrote {out}");
    if !deterministic {
        return Err("batched reports diverged from the scalar runs".into());
    }
    Ok(())
}

/// `evcap provision`
pub fn provision(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist", "target", "policy", "theta1", "e", "recharge", "slots", "max-k", "seed", "horizon",
        "delta1", "delta2",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let dist = args.require("dist")?;
    let raw_target = args.require("target")?;
    let target: f64 = raw_target.parse().map_err(|_| ArgsError::Invalid {
        flag: "target".into(),
        value: raw_target.into(),
        expected: "a QoM in (0, 1]",
    })?;
    let (delta1, delta2) = costs_from(args)?;
    let recharge_spec = match (args.get("recharge"), args.get("e")) {
        (Some(spec), _) => spec.to_owned(),
        (None, Some(e)) => format!("bernoulli:0.5,{}", 2.0 * e.parse::<f64>().unwrap_or(0.5)),
        (None, None) => return Err("pass --e RATE or --recharge SPEC".into()),
    };
    let e = spec::parse_recharge(&recharge_spec)?.mean_rate();
    let scenario = spec::Scenario::new(dist, policy_from(args, "greedy")?, e)?
        .with_recharge(&recharge_spec)?
        .with_costs(delta1, delta2)
        .with_horizon(horizon);
    let solved = spec::solve(&scenario)?;
    let opts = SizingOptions {
        slots: args.get_or("slots", 200_000, "a slot count")?,
        max_capacity: args.get_or("max-k", 4_096.0, "a capacity")?,
        seed: args.get_or("seed", 1, "an integer")?,
        ..SizingOptions::default()
    };
    let rec = recommend_capacity(
        &solved.pmf,
        solved.policy.as_ref(),
        &|_| spec::parse_recharge(&recharge_spec).expect("validated above"),
        target,
        opts,
    )?;
    println!("policy       : {}", solved.meta.label);
    println!("recharge     : {recharge_spec} (e = {e:.4})");
    println!("target QoM   : {target}");
    println!("recommended K: {} energy units", rec.capacity);
    println!(
        "achieved QoM : {:.4} ± {:.4} (95% CI over {} runs)",
        rec.achieved.mean,
        rec.achieved.half_width(1.96),
        rec.achieved.n
    );
    Ok(())
}

/// `evcap adaptive`
pub fn adaptive(args: &Args) -> CmdResult {
    args.expect_only(&[
        "dist",
        "e",
        "episodes",
        "episode-slots",
        "seed",
        "k",
        "horizon",
        "delta1",
        "delta2",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let dist = args.require("dist")?;
    let raw_e = args.require("e")?;
    let e: f64 = raw_e.parse().map_err(|_| ArgsError::Invalid {
        flag: "e".into(),
        value: raw_e.into(),
        expected: "a recharge rate",
    })?;
    let (delta1, delta2) = costs_from(args)?;
    // The oracle row: the same greedy artifact every other layer solves.
    let oracle = spec::solve(
        &spec::Scenario::new(dist, spec::PolicySpec::Greedy, e)?
            .with_costs(delta1, delta2)
            .with_horizon(horizon),
    )?;
    let config = AdaptiveConfig {
        episodes: args.get_or("episodes", 6, "an episode count")?,
        episode_slots: args.get_or("episode-slots", 50_000, "a slot count")?,
        seed: args.get_or("seed", 7, "an integer")?,
        capacity: Energy::from_units(args.get_or("k", 1000.0, "a capacity")?),
        ..AdaptiveConfig::default()
    };
    let report = run_adaptive_greedy(
        &oracle.pmf,
        EnergyBudget::per_slot(e),
        &oracle.consumption,
        &mut |_| {
            Box::new(
                evcap_energy::BernoulliRecharge::new(0.5, Energy::from_units(2.0 * e))
                    .expect("valid"),
            )
        },
        config,
    )?;
    println!(
        "{:>8} {:>8} {:>9} {:>8}  policy",
        "episode", "events", "captured", "QoM"
    );
    for ep in &report.episodes {
        println!(
            "{:>8} {:>8} {:>9} {:>8.4}  {}",
            ep.episode,
            ep.events,
            ep.captures,
            ep.qom(),
            ep.policy
        );
    }
    println!();
    println!(
        "oracle ideal QoM (true distribution known): {:.4}",
        oracle
            .meta
            .objective
            .expect("the greedy family always reports an objective")
    );
    Ok(())
}

/// `evcap figure`
pub fn figure(args: &Args) -> CmdResult {
    args.expect_only(&["quick", "svg", "format"])?;
    let quick: bool = args.get_or("quick", false, "true or false")?;
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let Some(id) = args.positional().first() else {
        return Err("pass a figure id, e.g. `evcap figure fig4a`".into());
    };
    let figures = match id.as_str() {
        "fig3a" => vec![runners::fig3a(scale)],
        "fig3b" => vec![runners::fig3b(scale)],
        "fig4a" => vec![runners::fig4a(scale)],
        "fig4b" => vec![runners::fig4b(scale)],
        "fig5a" => vec![runners::fig5(scale, runners::Fig5Panel::LowB)],
        "fig5b" => vec![runners::fig5(scale, runners::Fig5Panel::HighB)],
        "fig6a" => vec![runners::fig6a(scale)],
        "fig6b" => vec![runners::fig6b(scale)],
        "regions" => vec![runners::ablation_clustering_regions(scale)],
        "load-balance" => vec![runners::ablation_load_balance(scale)],
        "refined" => vec![
            runners::ablation_refined_convergence(scale),
            runners::ablation_refined_weibull40(scale),
        ],
        "coordination" => vec![runners::ablation_coordination(scale)],
        "outage" => vec![runners::ablation_outage_robustness(scale)],
        "objectives" => {
            let (capture, age) = runners::objective_frontier(scale);
            vec![capture, age]
        }
        other => return Err(format!("unknown figure `{other}`").into()),
    };
    match args.get("format").unwrap_or("text") {
        "json" => {
            for fig in &figures {
                println!("{}", crate::json::figure(fig));
            }
        }
        "text" => {
            for fig in &figures {
                println!("{fig}");
            }
        }
        other => return Err(format!("unknown format `{other}` (try text, json)").into()),
    }
    if let Some(path) = args.get("svg") {
        // Multi-panel ids get a numeric suffix per panel.
        for (i, fig) in figures.iter().enumerate() {
            let target = if figures.len() == 1 {
                path.to_owned()
            } else {
                match path.rsplit_once('.') {
                    Some((stem, ext)) => format!("{stem}-{}.{ext}", i + 1),
                    None => format!("{path}-{}", i + 1),
                }
            };
            std::fs::write(&target, evcap_bench::svg::render(fig))?;
            eprintln!("wrote {target}");
        }
    }
    Ok(())
}

/// `evcap trace` — summarize an observability JSONL file.
pub fn trace(args: &Args) -> CmdResult {
    use evcap_obs::{parse_line, JsonValue};

    args.expect_only(&["kind", "tree", "trace-id"])?;
    let Some(path) = args.positional().first() else {
        return Err("pass a JSONL file, e.g. `evcap trace run.jsonl`".into());
    };
    if args.get("tree").is_some() {
        return trace_tree(path, args.get("trace-id"));
    }
    if args.get("trace-id").is_some() {
        return Err("`--trace-id` only applies with `--tree`".into());
    }
    let kind = args.get("kind").unwrap_or("all");
    let known = [
        "all", "counters", "qom", "battery", "gaps", "idle", "spans", "perf",
    ];
    if !known.contains(&kind) {
        return Err(format!("unknown kind `{kind}` (try {})", known.join(", ")).into());
    }
    let wants = |k: &str| kind == "all" || kind == k;

    let text = std::fs::read_to_string(path)?;
    let mut qom_rows: Vec<(u64, f64, f64)> = Vec::new();
    let mut shown = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let rtype = record
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}:{}: record has no `type`", lineno + 1))?;
        let f = |name: &str| record.get(name).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let u = |name: &str| f(name) as u64;
        match rtype {
            "run_counters" if wants("counters") => {
                println!(
                    "run: {} slots ({} measured)",
                    u("slots"),
                    u("measured_slots")
                );
                println!(
                    "     {} events, {} captured, {} missed",
                    u("events"),
                    u("captures"),
                    u("misses")
                );
                if u("outage_slots") > 0 {
                    println!("     {} outage slots", u("outage_slots"));
                }
                if f("overflow_lost_units") > 0.0 {
                    println!(
                        "     {:.1} units lost to overflow",
                        f("overflow_lost_units")
                    );
                }
                shown += 1;
            }
            "qom_window" if wants("qom") => {
                qom_rows.push((u("slot"), f("window_qom"), f("cumulative_qom")));
                shown += 1;
            }
            "battery_histogram" if wants("battery") => {
                println!(
                    "battery: mean fill {:.4} over {} samples (every {} slots)",
                    f("mean_fill"),
                    u("samples"),
                    u("period")
                );
                if let Some(counts) = record.get("counts").and_then(JsonValue::as_array) {
                    let counts: Vec<f64> = counts.iter().filter_map(JsonValue::as_f64).collect();
                    let max = counts.iter().cloned().fold(1.0, f64::max);
                    let bins = counts.len();
                    for (i, &c) in counts.iter().enumerate() {
                        let bar = "#".repeat(((c / max) * 40.0).round() as usize);
                        println!(
                            "  [{:>4.2}-{:>4.2}) {:>10} {bar}",
                            i as f64 / bins as f64,
                            (i + 1) as f64 / bins as f64,
                            c as u64
                        );
                    }
                }
                shown += 1;
            }
            "gap_histogram" if wants("gaps") => {
                println!(
                    "capture gaps: {} samples, mean {:.2} slots, max {} ({} beyond linear bins)",
                    u("samples"),
                    f("mean_gap"),
                    u("max_gap"),
                    u("overflow")
                );
                shown += 1;
            }
            "forced_idle" if wants("idle") => {
                println!(
                    "forced idle: {} slots in {} streaks (mean {:.2}, longest {} on sensor {})",
                    u("total_slots"),
                    u("streaks"),
                    f("mean_streak"),
                    u("longest_streak"),
                    u("longest_sensor")
                );
                shown += 1;
            }
            "span" if wants("spans") => {
                let name = record
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                println!(
                    "span {name}: {} calls, total {:.3} ms, mean {:.1} µs (min {:.1}, max {:.1})",
                    u("count"),
                    f("total_ms"),
                    f("mean_us"),
                    f("min_us"),
                    f("max_us")
                );
                shown += 1;
            }
            "counter" if wants("spans") => {
                let name = record
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                println!("counter {name}: {}", u("value"));
                shown += 1;
            }
            // Written by `evcap loadgen` (`EVCAP_PERF_LOG`).
            "loadgen" if wants("perf") => {
                let label = record
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                println!(
                    "loadgen {label}: {} requests ({} errors) in {:.2} s, {:.0} req/s, p50 {:.0} µs, p99 {:.0} µs",
                    u("requests"),
                    u("errors"),
                    f("wall_seconds"),
                    f("requests_per_second"),
                    f("p50_us"),
                    f("p99_us")
                );
                shown += 1;
            }
            // Written by `evcap_obs::LatencyHistogram::record`.
            "latency" if wants("perf") => {
                let name = record
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                println!(
                    "latency {name}: {} observations, mean {:.1} µs, p50 {:.1} µs, p99 {:.1} µs, max {:.1} µs",
                    u("count"),
                    f("mean_us"),
                    f("p50_us"),
                    f("p99_us"),
                    f("max_us")
                );
                shown += 1;
            }
            // Written by `evcap serve --access-log`.
            "request" if wants("perf") => {
                println!(
                    "request {} {} -> {} in {:.0} µs{}",
                    record
                        .get("method")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?"),
                    record
                        .get("path")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?"),
                    u("status"),
                    f("micros"),
                    record
                        .get("cache")
                        .and_then(JsonValue::as_str)
                        .map(|c| format!(" ({c})"))
                        .unwrap_or_default()
                );
                shown += 1;
            }
            // Written by the bench harness (`EVCAP_PERF_LOG`), not --obs-out.
            "throughput" if wants("perf") => {
                let label = record
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                println!(
                    "throughput {label}: {} slots in {} runs, cpu {:.2} s, {:.2} M slots/sec/core",
                    u("slots"),
                    u("runs"),
                    f("cpu_seconds"),
                    f("slots_per_second") / 1e6
                );
                shown += 1;
            }
            _ => {}
        }
    }

    if !qom_rows.is_empty() {
        println!("qom convergence ({} windows):", qom_rows.len());
        println!("  {:>12} {:>12} {:>12}", "slot", "window", "cumulative");
        // At most 20 evenly spaced rows so long runs stay readable.
        let stride = qom_rows.len().div_ceil(20);
        for (i, (slot, w, c)) in qom_rows.iter().enumerate() {
            if i % stride == 0 || i + 1 == qom_rows.len() {
                println!("  {slot:>12} {w:>12.4} {c:>12.4}");
            }
        }
    }
    if shown == 0 {
        println!("no matching records in {path}");
    }
    Ok(())
}

/// `evcap trace --tree` — reconstruct per-request span trees from the
/// `trace_span` records in an access log (see `evcap serve --access-log`).
///
/// Each request's spans share a `trace_id`; the root span (the request
/// itself) has `parent_id` 0, and every other span points at its parent,
/// so the hierarchy renders by indentation. `--trace-id` narrows the
/// output to one request.
fn trace_tree(path: &str, only: Option<&str>) -> CmdResult {
    use evcap_obs::{parse_line, JsonValue};

    struct Span {
        id: u64,
        parent: u64,
        name: String,
        label: Option<String>,
        start_us: f64,
        dur_us: f64,
    }

    let text = std::fs::read_to_string(path)?;
    // trace_id -> spans, in first-seen order.
    let mut traces: Vec<(String, Vec<Span>)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = parse_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if record.get("type").and_then(JsonValue::as_str) != Some("trace_span") {
            continue;
        }
        let str_field = |k: &str| record.get(k).and_then(JsonValue::as_str).map(str::to_owned);
        let num_field = |k: &str| record.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let Some(trace_id) = str_field("trace_id") else {
            continue;
        };
        if only.is_some_and(|id| id != trace_id) {
            continue;
        }
        let span = Span {
            id: num_field("span_id") as u64,
            parent: num_field("parent_id") as u64,
            name: str_field("name").unwrap_or_else(|| "?".to_owned()),
            label: str_field("label"),
            start_us: num_field("start_us"),
            dur_us: num_field("dur_us"),
        };
        match traces.iter_mut().find(|(id, _)| *id == trace_id) {
            Some((_, spans)) => spans.push(span),
            None => traces.push((trace_id, vec![span])),
        }
    }

    if traces.is_empty() {
        match only {
            Some(id) => println!("no trace_span records for trace {id} in {path}"),
            None => println!("no trace_span records in {path}"),
        }
        return Ok(());
    }

    for (trace_id, spans) in &traces {
        println!("trace {trace_id} ({} spans)", spans.len());
        // Children render under their parent, siblings in start order;
        // spans whose parent never made it into the log (disabled stages,
        // truncated files) surface as extra roots rather than vanishing.
        let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by(|&a, &b| spans[a].start_us.total_cmp(&spans[b].start_us));
        let is_root = |s: &Span| s.parent == 0 || !ids.contains(&s.parent);
        // (index, depth), depth-first.
        let mut stack: Vec<(usize, usize)> = order
            .iter()
            .rev()
            .filter(|&&i| is_root(&spans[i]))
            .map(|&i| (i, 0))
            .collect();
        while let Some((i, depth)) = stack.pop() {
            let s = &spans[i];
            let label = s
                .label
                .as_deref()
                .map(|l| format!(" [{l}]"))
                .unwrap_or_default();
            println!(
                "  {:indent$}{}{label}  {:.1} µs (at +{:.1} µs)",
                "",
                s.name,
                s.dur_us,
                s.start_us,
                indent = depth * 2
            );
            for &j in order.iter().rev() {
                if spans[j].parent == s.id && j != i {
                    stack.push((j, depth + 1));
                }
            }
        }
    }
    Ok(())
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> CmdResult {
    match args.command() {
        Some("hazards") => hazards(args),
        Some("optimize") => optimize(args),
        Some("audit") => audit(args),
        Some("simulate") => simulate(args),
        Some("provision") => provision(args),
        Some("bench-sim") => bench_sim(args),
        Some("adaptive") => adaptive(args),
        Some("figure") => figure(args),
        Some("trace") => trace(args),
        Some("solve-fleet") => crate::fleet::solve_fleet(args),
        Some("store") => crate::fleet::store(args),
        Some("serve") => crate::serving::serve(args),
        Some("loadgen") => crate::serving::loadgen(args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `evcap help`").into()),
    }
}
