//! Minimal flag parser (no external dependencies).

use std::collections::BTreeMap;
use std::fmt;

/// Flags that take no value (`--verbose`, not `--verbose true`). They are
/// global: every subcommand accepts them.
const SWITCHES: &[&str] = &["verbose", "quiet"];

/// Per-command flags that take no value (`--tree`). Unlike [`SWITCHES`]
/// they are not global: a subcommand must still list them in
/// `expect_only` to accept them.
const VALUELESS: &[&str] = &["tree"];

/// Output verbosity selected by the global `--verbose`/`--quiet` switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verbosity {
    /// `--quiet`: suppress informational extras (summaries, notes).
    Quiet,
    /// The default: exactly the classic output.
    #[default]
    Normal,
    /// `--verbose`: add diagnostic notes and timing detail on stderr.
    Verbose,
}

/// A parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    command: Option<String>,
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

/// A command-line parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A flag was given without a value.
    MissingValue(String),
    /// A flag appeared twice.
    Duplicate(String),
    /// A required flag was absent.
    Required(String),
    /// A flag's value failed to parse.
    Invalid {
        /// The flag name.
        flag: String,
        /// The value supplied.
        value: String,
        /// The expected type or domain.
        expected: &'static str,
    },
    /// A flag was supplied that the command does not know.
    Unknown(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgsError::Duplicate(flag) => write!(f, "flag --{flag} given more than once"),
            ArgsError::Required(flag) => write!(f, "missing required flag --{flag}"),
            ArgsError::Invalid {
                flag,
                value,
                expected,
            } => write!(
                f,
                "flag --{flag} = `{value}` is invalid; expected {expected}"
            ),
            ArgsError::Unknown(flag) => write!(f, "unknown flag --{flag}"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses `argv` (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] for malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgsError> {
        let mut out = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(flag) = token.strip_prefix("--") {
                let (name, value) = match flag.split_once('=') {
                    Some((n, v)) => (n.to_owned(), v.to_owned()),
                    None if SWITCHES.contains(&flag) || VALUELESS.contains(&flag) => {
                        (flag.to_owned(), "true".to_owned())
                    }
                    None => {
                        let value = iter
                            .next()
                            .ok_or_else(|| ArgsError::MissingValue(flag.to_owned()))?;
                        (flag.to_owned(), value)
                    }
                };
                if out.flags.insert(name.clone(), value).is_some() {
                    return Err(ArgsError::Duplicate(name));
                }
            } else if out.command.is_none() {
                out.command = Some(token);
            } else {
                out.positional.push(token);
            }
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Positional arguments after the subcommand.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string flag, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Required`] if absent.
    pub fn require(&self, flag: &str) -> Result<&str, ArgsError> {
        self.get(flag)
            .ok_or_else(|| ArgsError::Required(flag.to_owned()))
    }

    /// A typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Invalid`] if present but unparseable.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::Invalid {
                flag: flag.to_owned(),
                value: raw.to_owned(),
                expected,
            }),
        }
    }

    /// Verifies that every supplied flag is in `allowed` (the global
    /// verbosity switches are always accepted).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Unknown`] for the first unexpected flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) && !SWITCHES.contains(&key.as_str()) {
                return Err(ArgsError::Unknown(key.clone()));
            }
        }
        Ok(())
    }

    /// The verbosity selected by `--verbose`/`--quiet` (quiet wins if both
    /// are given).
    pub fn verbosity(&self) -> Verbosity {
        if self.get("quiet").is_some_and(|v| v != "false") {
            Verbosity::Quiet
        } else if self.get("verbose").is_some_and(|v| v != "false") {
            Verbosity::Verbose
        } else {
            Verbosity::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_flags_and_positionals() {
        let args = parse(&["simulate", "--dist", "weibull:40,3", "--e=0.5", "extra"]).unwrap();
        assert_eq!(args.command(), Some("simulate"));
        assert_eq!(args.get("dist"), Some("weibull:40,3"));
        assert_eq!(args.get("e"), Some("0.5"));
        assert_eq!(args.positional(), &["extra".to_string()]);
    }

    #[test]
    fn typed_flags_with_defaults() {
        let args = parse(&["x", "--slots", "1000"]).unwrap();
        assert_eq!(args.get_or("slots", 5u64, "an integer").unwrap(), 1000);
        assert_eq!(args.get_or("seed", 42u64, "an integer").unwrap(), 42);
        assert!(args.get_or("slots", 0f32, "a float").is_ok());
    }

    #[test]
    fn errors() {
        assert_eq!(
            parse(&["x", "--flag"]),
            Err(ArgsError::MissingValue("flag".into()))
        );
        assert_eq!(
            parse(&["x", "--a", "1", "--a", "2"]),
            Err(ArgsError::Duplicate("a".into()))
        );
        let args = parse(&["x", "--slots", "abc"]).unwrap();
        assert!(matches!(
            args.get_or("slots", 0u64, "an integer"),
            Err(ArgsError::Invalid { .. })
        ));
        assert!(matches!(args.require("dist"), Err(ArgsError::Required(_))));
        assert!(matches!(
            args.expect_only(&["seed"]),
            Err(ArgsError::Unknown(_))
        ));
    }

    #[test]
    fn switches_need_no_value() {
        let args = parse(&["simulate", "--verbose", "--dist", "det:7"]).unwrap();
        assert_eq!(args.get("dist"), Some("det:7"));
        assert_eq!(args.verbosity(), Verbosity::Verbose);
        // Switches pass expect_only without being listed.
        args.expect_only(&["dist"]).unwrap();

        let args = parse(&["simulate", "--quiet"]).unwrap();
        assert_eq!(args.verbosity(), Verbosity::Quiet);
        // Quiet wins over verbose; explicit =false disables a switch.
        let args = parse(&["x", "--verbose", "--quiet"]).unwrap();
        assert_eq!(args.verbosity(), Verbosity::Quiet);
        let args = parse(&["x", "--verbose=false"]).unwrap();
        assert_eq!(args.verbosity(), Verbosity::Normal);
        let args = parse(&["x"]).unwrap();
        assert_eq!(args.verbosity(), Verbosity::Normal);
    }

    #[test]
    fn display_is_informative() {
        let e = ArgsError::Invalid {
            flag: "e".into(),
            value: "x".into(),
            expected: "a rate",
        };
        assert!(e.to_string().contains("--e"));
        assert!(e.to_string().contains("a rate"));
    }
}
