//! `evcap solve-fleet` and `evcap store` — batch solving into, and
//! maintenance of, the persistent artifact store (`evcap-store`).
//!
//! `solve-fleet` expands a cartesian scenario matrix (distributions × e
//! rates × policy families), groups it by `(dist, policy)`, and solves
//! each group in ascending-`e` order so every clustering solve can
//! warm-start from its predecessor's `(n1, n2, n3)` optimum — the same
//! trust-region seeding `evcap_spec::solve_with_hint` certifies as
//! bit-identical to a cold solve. Groups fan out across threads through
//! `evcap_sim::parallel`; the store itself is only touched from this
//! thread (appends are cheap, solves are not).

use std::error::Error;
use std::path::Path;

use evcap_sim::parallel::parallel_map_with;
use evcap_store::Store;

use crate::args::{Args, ArgsError};
use crate::spec;

type CmdResult = Result<(), Box<dyn Error>>;

/// Opens the store named by the required `--store DIR` flag.
fn open_store(args: &Args) -> Result<Store, Box<dyn Error>> {
    let dir = args.require("store")?;
    Store::open(Path::new(dir)).map_err(|e| format!("cannot open store `{dir}`: {e}").into())
}

/// One `(dist, policy)` group: scenarios in ascending-`e` order plus the
/// best warm hint the store already held for the group's first member.
struct FleetJob {
    scenarios: Vec<spec::Scenario>,
    hint: Option<(usize, usize, usize)>,
}

/// `evcap solve-fleet`
pub fn solve_fleet(args: &Args) -> CmdResult {
    args.expect_only(&[
        "store",
        "dists",
        "e-list",
        "policies",
        "theta1",
        "delta1",
        "delta2",
        "horizon",
        "sensors",
        "threads",
        "force",
        "objective",
    ])?;
    let horizon: usize = args.get_or("horizon", 65_536, "a slot count")?;
    let sensors: usize = args.get_or("sensors", 1, "a sensor count")?;
    let delta1: f64 = args.get_or("delta1", 1.0, "an energy amount")?;
    let delta2: f64 = args.get_or("delta2", 6.0, "an energy amount")?;
    let force: bool = args.get_or("force", false, "true or false")?;
    let threads: usize = args.get_or("threads", 0, "a thread count (0 = auto)")?;
    let objective = match args.get("objective") {
        None => spec::Objective::Qom,
        Some(raw) => spec::parse_objective(raw)?,
    };
    let verbosity = args.verbosity();

    // Specs contain commas (`weibull:40,3`), so the dist axis is
    // semicolon-separated; the scalar axes stay comma-separated.
    let dists: Vec<&str> = args
        .require("dists")?
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if dists.is_empty() {
        return Err("pass at least one distribution in --dists".into());
    }
    let mut e_list: Vec<f64> = Vec::new();
    for part in args.require("e-list")?.split(',') {
        let e: f64 = part.trim().parse().map_err(|_| ArgsError::Invalid {
            flag: "e-list".into(),
            value: part.trim().into(),
            expected: "comma-separated recharge rates, e.g. 0.1,0.2,0.5",
        })?;
        e_list.push(e);
    }
    // Ascending order is what makes the warm-start chain meaningful: each
    // solve seeds the next-larger budget in its group.
    e_list.sort_by(f64::total_cmp);
    e_list.dedup();
    let mut policies: Vec<spec::PolicySpec> = Vec::new();
    for name in args
        .get("policies")
        .unwrap_or("greedy,clustering")
        .split(',')
    {
        let mut policy = spec::PolicySpec::parse(name.trim())?;
        if let spec::PolicySpec::Periodic { theta1 } = &mut policy {
            *theta1 = args.get_or("theta1", 3, "a slot count")?;
        }
        policies.push(policy);
    }

    let mut store = open_store(args)?;
    let mut jobs: Vec<FleetJob> = Vec::new();
    let mut skipped = 0usize;
    for dist in &dists {
        for policy in &policies {
            let mut scenarios = Vec::new();
            for &e in &e_list {
                let scenario = spec::Scenario::new(dist, *policy, e)?
                    .with_costs(delta1, delta2)
                    .with_horizon(horizon)
                    .with_sensors(sensors)
                    .with_objective(objective);
                if !force && store.contains(&scenario.canonical_key()) {
                    skipped += 1;
                } else {
                    scenarios.push(scenario);
                }
            }
            let Some(first) = scenarios.first() else {
                continue;
            };
            // Seed the group from the nearest stored neighbor (if any);
            // inside the group the chain then feeds itself.
            let hint = store.warm_hint(first);
            jobs.push(FleetJob { scenarios, hint });
        }
    }
    let planned: usize = jobs.iter().map(|j| j.scenarios.len()).sum();
    if planned == 0 {
        println!("fleet        : nothing to solve ({skipped} scenarios already stored)");
        return Ok(());
    }

    let results: Vec<Vec<Result<(spec::SolvedPolicy, bool), String>>> =
        parallel_map_with(jobs, (threads > 0).then_some(threads), |job| {
            let mut hint = job.hint;
            let mut out = Vec::with_capacity(job.scenarios.len());
            for scenario in &job.scenarios {
                let warm =
                    hint.is_some() && matches!(scenario.policy(), spec::PolicySpec::Clustering);
                match spec::solve_with_hint(scenario, hint) {
                    Ok(solved) => {
                        if let spec::PolicyParams::Clustering { n1, n2, n3, .. } = &solved.params {
                            hint = Some((*n1, *n2, *n3));
                        }
                        out.push(Ok((solved, warm)));
                    }
                    Err(e) => out.push(Err(format!("{}: {e}", scenario.canonical_key()))),
                }
            }
            out
        });

    let mut appended = 0usize;
    let mut warm_solves = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for outcome in results.into_iter().flatten() {
        match outcome {
            Ok((solved, warm)) => {
                store.append(&solved)?;
                appended += 1;
                warm_solves += usize::from(warm);
                if verbosity != crate::args::Verbosity::Quiet {
                    println!(
                        "  solved {:<60} {} iterations{}",
                        solved.scenario.canonical_key(),
                        solved.meta.iterations,
                        if warm { "  (warm)" } else { "" }
                    );
                }
            }
            Err(msg) => failures.push(msg),
        }
    }
    println!(
        "fleet        : {appended} solved ({warm_solves} warm-started), {skipped} already stored, {} failed",
        failures.len()
    );
    println!(
        "store        : {} entries, {} bytes at {}",
        store.len(),
        store.bytes(),
        store.dir().display()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        for msg in &failures {
            eprintln!("failed: {msg}");
        }
        Err(format!("{} of {planned} scenarios failed to solve", failures.len()).into())
    }
}

/// `evcap store <ls|stat|verify|compact>`
pub fn store(args: &Args) -> CmdResult {
    args.expect_only(&["store"])?;
    let Some(action) = args.positional().first() else {
        return Err("pass an action: evcap store <ls|stat|verify|compact> --store DIR".into());
    };
    let mut store = open_store(args)?;
    match action.as_str() {
        "ls" => {
            let mut keys: Vec<&str> = store.keys().collect();
            keys.sort_unstable();
            for key in &keys {
                println!("{key}");
            }
            if args.verbosity() != crate::args::Verbosity::Quiet {
                eprintln!("{} artifacts in {}", keys.len(), store.dir().display());
            }
        }
        "stat" => {
            println!(
                "store        : {}",
                store.dir().join(evcap_store::STORE_FILE).display()
            );
            println!("entries      : {}", store.len());
            println!("bytes        : {}", store.bytes());
            if store.unindexed() > 0 {
                println!(
                    "unindexed    : {} records (undecodable prefix)",
                    store.unindexed()
                );
            }
        }
        "verify" => {
            let report = store.verify()?;
            println!("valid        : {} records", report.valid);
            for (offset, detail) in &report.corrupt {
                println!("corrupt      : offset {offset}: {detail}");
            }
            if report.torn_tail_bytes > 0 {
                println!("torn tail    : {} bytes", report.torn_tail_bytes);
            }
            if !report.is_clean() {
                return Err(format!(
                    "store has {} corrupt records and {} torn-tail bytes",
                    report.corrupt.len(),
                    report.torn_tail_bytes
                )
                .into());
            }
            println!("store is clean");
        }
        "compact" => {
            let stats = store.compact()?;
            println!("kept         : {} records", stats.kept);
            println!("dropped      : {} records", stats.dropped);
            println!(
                "bytes        : {} -> {}",
                stats.bytes_before, stats.bytes_after
            );
        }
        other => {
            return Err(
                format!("unknown store action `{other}` (try ls, stat, verify, compact)").into(),
            )
        }
    }
    Ok(())
}
