//! Re-export of the shared spec parser.
//!
//! The parsers live in `evcap-spec` so the CLI and the policy server
//! (`evcap-serve`) interpret `weibull:40,3` / `bernoulli:0.5,1` identically;
//! this module keeps the historical `crate::spec` path working.

pub use evcap_spec::*;
