//! Minimal JSON emission for CLI outputs.
//!
//! The offline dependency set includes `serde` but not `serde_json`, so
//! Serialize impls alone could not produce any bytes; instead the CLI
//! hand-writes the few JSON shapes it needs (simulation reports and
//! figures). The writer escapes strings per RFC 8259 and renders non-finite
//! floats as `null`.

use std::fmt::Write as _;

use evcap_bench::Figure;
use evcap_sim::{BatchReport, SimReport};
use evcap_spec::Objective;

/// Escapes a string for inclusion in JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number (`null` for NaN/∞, which JSON lacks).
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Serializes a simulation report. Age fields appear only under a
/// non-default objective, so pre-objective output stays byte-identical.
pub fn sim_report(report: &SimReport, objective: Objective) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"slots\":{},\"events\":{},\"captures\":{},\"qom\":{},\"discharge_rate\":{},\"forced_idle\":{},\"load_balance\":{}",
        report.slots,
        report.events,
        report.captures,
        num(report.qom()),
        num(report.discharge_rate()),
        report.total_forced_idle(),
        num(report.load_balance()),
    );
    if !objective.is_default() {
        let _ = write!(
            out,
            ",\"objective\":\"{objective}\",\"mean_age\":{},\"peak_age\":{}",
            num(report.mean_age()),
            report.peak_age,
        );
    }
    out.push_str(",\"sensors\":[");
    for (i, s) in report.sensors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"activations\":{},\"captures\":{},\"forced_idle\":{},\"outage_slots\":{},\"consumed\":{},\"recharged\":{},\"overflow\":{},\"initial_level\":{},\"final_level\":{}}}",
            s.activations,
            s.captures,
            s.forced_idle,
            s.outage_slots,
            num(s.consumed.as_units()),
            num(s.recharged.as_units()),
            num(s.overflow.as_units()),
            num(s.initial_level.as_units()),
            num(s.final_level.as_units()),
        );
    }
    out.push_str("]}");
    out
}

/// Serializes a batched replication report: cross-seed summaries plus one
/// compact object per replication (full per-sensor detail stays available
/// through `--replications 1` runs or the JSONL export). Age fields appear
/// only under a non-default objective.
pub fn batch_report(report: &BatchReport, objective: Objective) -> String {
    let mut out = String::with_capacity(1024);
    let (qlo, qhi) = report.qom.ci95();
    let _ = write!(
        out,
        "{{\"slots\":{},\"replications\":{},\"qom\":{{\"mean\":{},\"std_dev\":{},\"ci95\":[{},{}]}},\"discharge\":{{\"mean\":{},\"std_dev\":{}}},\"events\":{},\"captures\":{},\"pooled_qom\":{},\"activations\":{},\"forced_idle\":{},\"mean_final_fill\":{},\"mean_capture_gap\":{}",
        report.slots,
        report.replications(),
        num(report.qom.mean),
        num(report.qom.std_dev),
        num(qlo),
        num(qhi),
        num(report.discharge.mean),
        num(report.discharge.std_dev),
        report.events,
        report.captures,
        num(report.pooled_qom()),
        report.activations,
        report.forced_idle,
        num(report.mean_final_fill),
        report.mean_capture_gap.map_or_else(|| "null".to_owned(), num),
    );
    if !objective.is_default() {
        let _ = write!(
            out,
            ",\"objective\":\"{objective}\",\"mean_age\":{{\"mean\":{},\"std_dev\":{}}},\"peak_age\":{}",
            num(report.mean_age.mean),
            num(report.mean_age.std_dev),
            report.peak_age,
        );
    }
    out.push_str(",\"reports\":[");
    for (i, (seed, rep)) in report.seeds.iter().zip(&report.reports).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seed\":{seed},\"events\":{},\"captures\":{},\"qom\":{},\"discharge_rate\":{}}}",
            rep.events,
            rep.captures,
            num(rep.qom()),
            num(rep.discharge_rate()),
        );
    }
    out.push_str("]}");
    out
}

/// Serializes a figure (id, title, x label, and all series).
pub fn figure(fig: &Figure) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"id\":\"{}\",\"title\":\"{}\",\"x_label\":\"{}\",\"series\":[",
        escape(&fig.id),
        escape(&fig.title),
        escape(&fig.x_label),
    );
    for (i, series) in fig.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",\"points\":[", escape(&series.name));
        for (j, &(x, y)) in series.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", num(x), num(y));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_bench::Series;
    use evcap_sim::SensorStats;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("\r\t"), "\\r\\t");
        // Non-ASCII passes through unescaped (JSON strings are Unicode).
        assert_eq!(escape("µ-QoM π*"), "µ-QoM π*");
        assert_eq!(escape(""), "");
    }

    #[test]
    fn every_control_character_round_trips_through_the_obs_parser() {
        // Cross-validate this writer against the strict RFC 8259 parser in
        // evcap-obs: every C0 control character must come back intact.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let line = format!("{{\"s\":\"{}\"}}", escape(&format!("x{c}y")));
            let value = evcap_obs::parse_line(&line)
                .unwrap_or_else(|e| panic!("U+{code:04X} fails to parse: {e}"));
            assert_eq!(
                value.get("s").and_then(evcap_obs::JsonValue::as_str),
                Some(format!("x{c}y").as_str()),
                "U+{code:04X} round-trips"
            );
        }
    }

    #[test]
    fn figure_json_parses_with_the_obs_parser() {
        let mut fig = Figure::new("figX", "control \u{7} title \"q\" \\ \n", "x µ");
        let mut s = Series::new("a\tb");
        s.push(1.0, f64::NAN);
        s.push(2.0, 0.5);
        fig.series.push(s);
        let value = evcap_obs::parse_line(&figure(&fig)).expect("valid JSON");
        assert_eq!(
            value.get("title").and_then(evcap_obs::JsonValue::as_str),
            Some("control \u{7} title \"q\" \\ \n")
        );
        let series = value
            .get("series")
            .and_then(evcap_obs::JsonValue::as_array)
            .unwrap();
        assert_eq!(
            series[0].get("name").and_then(evcap_obs::JsonValue::as_str),
            Some("a\tb")
        );
        // NaN was rendered as null: the first point's y is not a number.
        let points = series[0]
            .get("points")
            .and_then(evcap_obs::JsonValue::as_array)
            .unwrap();
        let first = points[0].as_array().unwrap();
        assert_eq!(first[0].as_f64(), Some(1.0));
        assert_eq!(first[1].as_f64(), None);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn sim_report_shape() {
        let report = SimReport {
            slots: 100,
            events: 10,
            captures: 7,
            measured_slots: 100,
            age_sum: 450,
            peak_age: 12,
            sensors: vec![SensorStats::default()],
            trace: vec![],
            battery_trace: vec![],
        };
        let json = sim_report(&report, Objective::Qom);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"qom\":0.7"));
        assert!(json.contains("\"sensors\":[{"));
        // The default objective leaves the report age-free…
        assert!(!json.contains("objective"));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // …while an age objective names itself and adds both age fields.
        let aged = sim_report(&report, Objective::AoiMean);
        assert!(aged.contains("\"objective\":\"aoi-mean\""));
        assert!(aged.contains("\"mean_age\":4.5"));
        assert!(aged.contains("\"peak_age\":12"));
        let value = evcap_obs::parse_line(&aged).expect("valid JSON");
        assert_eq!(
            value.get("mean_age").and_then(evcap_obs::JsonValue::as_f64),
            Some(4.5)
        );
    }

    #[test]
    fn figure_shape() {
        let mut fig = Figure::new("figX", "title \"quoted\"", "c");
        let mut s = Series::new("alpha");
        s.push(0.5, 0.25);
        fig.series.push(s);
        let json = figure(&fig);
        assert!(json.contains("\"id\":\"figX\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("[0.5,0.25]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
