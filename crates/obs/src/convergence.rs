//! Windowed QoM-convergence tracking.
//!
//! Theorem 1 claims `U_K(π*) → U(π*)` as the battery `K → ∞`; what a single
//! run can show is the *trajectory*: the QoM measured over consecutive
//! windows of slots, plus the running cumulative QoM, converging toward the
//! analytic value. This observer records exactly that series.

use crate::jsonl::JsonObject;
use crate::observer::{Observer, SlotOutcome};

/// One window of the convergence series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QomWindow {
    /// Last slot covered by the window.
    pub slot: u64,
    /// Events inside the window.
    pub events: u64,
    /// Captures inside the window.
    pub captures: u64,
    /// Cumulative events up to and including this window.
    pub cumulative_events: u64,
    /// Cumulative captures up to and including this window.
    pub cumulative_captures: u64,
}

impl QomWindow {
    /// QoM within the window alone (1.0 for an event-free window).
    pub fn window_qom(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            self.captures as f64 / self.events as f64
        }
    }

    /// Cumulative QoM from the start of measurement through this window.
    pub fn cumulative_qom(&self) -> f64 {
        if self.cumulative_events == 0 {
            1.0
        } else {
            self.cumulative_captures as f64 / self.cumulative_events as f64
        }
    }
}

/// Records the QoM over consecutive fixed-size windows of measured slots.
#[derive(Debug, Clone)]
pub struct QomConvergence {
    window: u64,
    slots_in_window: u64,
    events: u64,
    captures: u64,
    cumulative_events: u64,
    cumulative_captures: u64,
    series: Vec<QomWindow>,
}

impl QomConvergence {
    /// Creates a tracker with the given window length in slots (minimum 1).
    pub fn new(window: u64) -> Self {
        Self {
            window: window.max(1),
            slots_in_window: 0,
            events: 0,
            captures: 0,
            cumulative_events: 0,
            cumulative_captures: 0,
            series: Vec::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The completed windows so far (a partial trailing window is *not*
    /// included; call [`finish`](QomConvergence::finish) to flush it).
    pub fn series(&self) -> &[QomWindow] {
        &self.series
    }

    /// Flushes a partial trailing window, if any, and returns the series.
    pub fn finish(mut self) -> Vec<QomWindow> {
        self.flush_partial();
        self.series
    }

    /// Flushes a partial trailing window in place.
    pub fn flush_partial(&mut self) {
        if self.slots_in_window > 0 {
            self.close_window(u64::MAX);
        }
    }

    fn close_window(&mut self, slot: u64) {
        self.cumulative_events += self.events;
        self.cumulative_captures += self.captures;
        self.series.push(QomWindow {
            slot: if slot == u64::MAX {
                self.series.len() as u64 * self.window + self.slots_in_window
            } else {
                slot
            },
            events: self.events,
            captures: self.captures,
            cumulative_events: self.cumulative_events,
            cumulative_captures: self.cumulative_captures,
        });
        self.events = 0;
        self.captures = 0;
        self.slots_in_window = 0;
    }

    /// Serializes each completed window as one JSONL record.
    pub fn export_records(&self, mut emit: impl FnMut(JsonObject)) {
        for w in &self.series {
            let mut obj = JsonObject::with_type("qom_window");
            obj.field_u64("slot", w.slot);
            obj.field_u64("events", w.events);
            obj.field_u64("captures", w.captures);
            obj.field_f64("window_qom", w.window_qom());
            obj.field_f64("cumulative_qom", w.cumulative_qom());
            emit(obj);
        }
    }
}

impl Observer for QomConvergence {
    #[inline]
    fn on_slot(&mut self, outcome: &SlotOutcome) {
        if !outcome.measured {
            return;
        }
        self.slots_in_window += 1;
        if outcome.event {
            self.events += 1;
            if outcome.captured {
                self.captures += 1;
            }
        }
        if self.slots_in_window == self.window {
            self.close_window(outcome.slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(t: u64, event: bool, captured: bool) -> SlotOutcome {
        SlotOutcome {
            slot: t,
            owner: 0,
            state: 1,
            wanted: true,
            active: true,
            event,
            captured,
            measured: true,
        }
    }

    #[test]
    fn windows_close_on_schedule() {
        let mut q = QomConvergence::new(10);
        for t in 1..=25 {
            q.on_slot(&slot(t, t % 5 == 0, t % 10 == 0));
        }
        assert_eq!(q.series().len(), 2);
        let w = q.series()[0];
        assert_eq!(w.slot, 10);
        assert_eq!(w.events, 2);
        assert_eq!(w.captures, 1);
        assert!((w.window_qom() - 0.5).abs() < 1e-12);
        let rest = q.finish();
        assert_eq!(rest.len(), 3, "partial window flushed");
    }

    #[test]
    fn cumulative_qom_accumulates() {
        let mut q = QomConvergence::new(2);
        q.on_slot(&slot(1, true, true));
        q.on_slot(&slot(2, true, false));
        q.on_slot(&slot(3, true, true));
        q.on_slot(&slot(4, true, true));
        let s = q.series();
        assert_eq!(s.len(), 2);
        assert!((s[0].cumulative_qom() - 0.5).abs() < 1e-12);
        assert!((s[1].cumulative_qom() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn warmup_slots_are_ignored() {
        let mut q = QomConvergence::new(5);
        for t in 1..=10 {
            let mut s = slot(t, true, true);
            s.measured = t > 5;
            q.on_slot(&s);
        }
        assert_eq!(q.series().len(), 1);
        assert_eq!(q.series()[0].events, 5);
    }

    #[test]
    fn eventless_window_reports_qom_one() {
        let mut q = QomConvergence::new(3);
        for t in 1..=3 {
            q.on_slot(&slot(t, false, false));
        }
        assert_eq!(q.series()[0].window_qom(), 1.0);
    }

    #[test]
    fn export_emits_one_record_per_window() {
        let mut q = QomConvergence::new(2);
        for t in 1..=6 {
            q.on_slot(&slot(t, true, t % 2 == 0));
        }
        let mut lines = Vec::new();
        q.export_records(|obj| lines.push(obj.finish()));
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"qom_window\""));
        assert!(lines[0].contains("\"window_qom\":0.5"));
    }
}
