//! Forced-idle streak tracking.
//!
//! A *forced-idle streak* is a maximal run of consecutive slots in which the
//! same sensor wanted to activate but was pinned below the `δ1 + δ2`
//! threshold. Long streaks are the signature of an under-provisioned battery
//! (the paper's finite-`K` penalty): the policy keeps voting yes and the
//! hardware keeps saying no.

use crate::jsonl::JsonObject;
use crate::observer::Observer;

/// Per-sensor bookkeeping for the streak currently being extended.
#[derive(Debug, Clone, Copy, Default)]
struct OpenStreak {
    last_slot: u64,
    length: u64,
}

/// Tracks forced-idle streak statistics across sensors.
#[derive(Debug, Clone, Default)]
pub struct ForcedIdleStreaks {
    open: Vec<OpenStreak>,
    total_forced_idle: u64,
    completed_streaks: u64,
    sum_streak_length: u64,
    longest: u64,
    longest_sensor: usize,
}

impl ForcedIdleStreaks {
    /// Creates an empty tracker (sensor slots grow on demand).
    pub fn new() -> Self {
        Self::default()
    }

    fn close(&mut self, sensor: usize) {
        let open = &mut self.open[sensor];
        if open.length > 0 {
            self.completed_streaks += 1;
            self.sum_streak_length += open.length;
            if open.length > self.longest {
                self.longest = open.length;
                self.longest_sensor = sensor;
            }
            open.length = 0;
        }
    }

    /// Flushes any still-open streaks into the statistics.
    pub fn flush(&mut self) {
        for sensor in 0..self.open.len() {
            self.close(sensor);
        }
    }

    /// Total forced-idle slot count observed.
    pub fn total(&self) -> u64 {
        self.total_forced_idle
    }

    /// Number of completed streaks (call [`flush`](Self::flush) first to
    /// include open ones).
    pub fn streaks(&self) -> u64 {
        self.completed_streaks
    }

    /// Mean completed-streak length; 0.0 with none.
    pub fn mean_length(&self) -> f64 {
        if self.completed_streaks == 0 {
            0.0
        } else {
            self.sum_streak_length as f64 / self.completed_streaks as f64
        }
    }

    /// The longest streak seen and the sensor that suffered it.
    pub fn longest(&self) -> (u64, usize) {
        (self.longest, self.longest_sensor)
    }

    /// Serializes the statistics as one JSONL record.
    pub fn export_record(&self) -> JsonObject {
        let mut obj = JsonObject::with_type("forced_idle");
        obj.field_u64("total_slots", self.total_forced_idle);
        obj.field_u64("streaks", self.completed_streaks);
        obj.field_f64("mean_streak", self.mean_length());
        obj.field_u64("longest_streak", self.longest);
        obj.field_usize("longest_sensor", self.longest_sensor);
        obj
    }
}

impl Observer for ForcedIdleStreaks {
    #[inline]
    fn on_forced_idle(&mut self, slot: u64, sensor: usize, _battery_fraction: f64) {
        if sensor >= self.open.len() {
            self.open.resize(sensor + 1, OpenStreak::default());
        }
        self.total_forced_idle += 1;
        let open = &mut self.open[sensor];
        if open.length > 0 && slot != open.last_slot + 1 {
            // The sensor recovered for at least one slot in between.
            self.close(sensor);
        }
        let open = &mut self.open[sensor];
        open.length += 1;
        open.last_slot = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_slots_extend_one_streak() {
        let mut s = ForcedIdleStreaks::new();
        for t in 10..15 {
            s.on_forced_idle(t, 0, 0.01);
        }
        s.flush();
        assert_eq!(s.total(), 5);
        assert_eq!(s.streaks(), 1);
        assert_eq!(s.longest(), (5, 0));
    }

    #[test]
    fn a_gap_starts_a_new_streak() {
        let mut s = ForcedIdleStreaks::new();
        s.on_forced_idle(1, 0, 0.0);
        s.on_forced_idle(2, 0, 0.0);
        s.on_forced_idle(5, 0, 0.0); // gap at 3–4
        s.flush();
        assert_eq!(s.streaks(), 2);
        assert!((s.mean_length() - 1.5).abs() < 1e-12);
        assert_eq!(s.longest(), (2, 0));
    }

    #[test]
    fn sensors_are_tracked_independently() {
        let mut s = ForcedIdleStreaks::new();
        // Interleaved slots: each sensor's streak is contiguous in *its*
        // forced-idle slots.
        s.on_forced_idle(1, 0, 0.0);
        s.on_forced_idle(1, 1, 0.0);
        s.on_forced_idle(2, 0, 0.0);
        s.on_forced_idle(2, 1, 0.0);
        s.on_forced_idle(3, 1, 0.0);
        s.flush();
        assert_eq!(s.streaks(), 2);
        assert_eq!(s.longest(), (3, 1));
    }

    #[test]
    fn export_record_shape() {
        let mut s = ForcedIdleStreaks::new();
        s.on_forced_idle(1, 2, 0.0);
        s.flush();
        let record = s.export_record().finish();
        assert!(record.contains("\"type\":\"forced_idle\""));
        assert!(record.contains("\"longest_sensor\":2"));
    }
}
