//! A fixed-size, lock-free flight recorder for request summaries.
//!
//! The ring keeps the last `capacity` [`RequestSample`]s written via
//! [`FlightRecorder::record`]. Writers never block: a global position
//! counter assigns each write a slot, and each slot is a seqlock built
//! from plain atomics (the crate forbids `unsafe`, so there is no shared
//! mutable buffer — every field is its own `AtomicU64`). A writer claims
//! its slot by CAS-ing the sequence word from even to odd, stores the
//! fields, then releases with `seq + 2`; if the claim fails (two writes
//! landed on the same slot a full ring apart, simultaneously) the newer
//! sample is dropped — the ring is lossy by design. Readers snapshot the
//! sequence, read the fields, and discard the slot if the sequence was
//! odd or moved — a torn read is dropped, never surfaced.
//!
//! Samples are deliberately plain numbers: the embedding layer (the
//! policy server) owns the mapping from path/cache tags to strings and
//! packs the trace id's bytes into two words. That keeps this module free
//! of allocation on the write path — recording is a handful of relaxed
//! stores bracketed by two sequence updates.

use std::sync::atomic::{AtomicU64, Ordering};

/// One request summary, fully numeric (see module docs for why).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestSample {
    /// Caller-defined route tag (index into the embedder's route table).
    pub path_tag: u8,
    /// HTTP status code.
    pub status: u16,
    /// Caller-defined cache-outcome tag.
    pub cache_tag: u8,
    /// Caller-defined objective tag (0 = no scenario attached).
    pub objective_tag: u8,
    /// End-to-end latency, nanoseconds.
    pub latency_ns: u64,
    /// First 8 bytes of the trace id, big-endian.
    pub trace_hi: u64,
    /// Next 8 bytes of the trace id, big-endian (zero-padded).
    pub trace_lo: u64,
    /// Per-stage microseconds: parse, canonicalize, lp, clustering,
    /// table-compile (saturated to `u32::MAX` each).
    pub stage_us: [u32; 5],
}

impl RequestSample {
    /// Decodes the packed trace-id bytes back into a string, trimming the
    /// zero padding.
    pub fn trace_id(&self) -> String {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&self.trace_hi.to_be_bytes());
        bytes[8..].copy_from_slice(&self.trace_lo.to_be_bytes());
        let end = bytes.iter().position(|&b| b == 0).unwrap_or(16);
        String::from_utf8_lossy(&bytes[..end]).into_owned()
    }

    /// Packs up to 16 bytes of a trace id into the two id words (longer
    /// ids are truncated; generated ids are exactly 16 hex chars).
    pub fn set_trace_id(&mut self, id: &str) {
        let mut bytes = [0u8; 16];
        let take = id.len().min(16);
        bytes[..take].copy_from_slice(&id.as_bytes()[..take]);
        self.trace_hi = u64::from_be_bytes(bytes[..8].try_into().unwrap_or([0; 8]));
        self.trace_lo = u64::from_be_bytes(bytes[8..].try_into().unwrap_or([0; 8]));
    }
}

/// Words per slot: seq + header + latency + 2 id words + 3 stage words.
const SLOT_WORDS: usize = 8;

struct Slot {
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The lock-free ring. See module docs for the seqlock protocol.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Total samples ever written; `pos % slots.len()` is the next slot.
    pos: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("written", &self.pos.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A ring holding the last `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            pos: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total samples ever recorded (not capped at capacity).
    pub fn recorded(&self) -> u64 {
        self.pos.load(Ordering::Relaxed)
    }

    /// Records one sample. Never blocks; overwrites the oldest slot. The
    /// sample is silently dropped in the rare case that another writer
    /// owns the same slot at this instant (see module docs).
    pub fn record(&self, sample: &RequestSample) {
        let n = self.pos.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let seq = slot.words[0].load(Ordering::Relaxed);
        if seq & 1 == 1 {
            return;
        }
        if slot.words[0]
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let header = u64::from(sample.status)
            | (u64::from(sample.path_tag) << 16)
            | (u64::from(sample.cache_tag) << 24)
            | (u64::from(sample.objective_tag) << 32);
        slot.words[1].store(header, Ordering::Relaxed);
        slot.words[2].store(sample.latency_ns, Ordering::Relaxed);
        slot.words[3].store(sample.trace_hi, Ordering::Relaxed);
        slot.words[4].store(sample.trace_lo, Ordering::Relaxed);
        slot.words[5].store(
            u64::from(sample.stage_us[0]) | (u64::from(sample.stage_us[1]) << 32),
            Ordering::Relaxed,
        );
        slot.words[6].store(
            u64::from(sample.stage_us[2]) | (u64::from(sample.stage_us[3]) << 32),
            Ordering::Relaxed,
        );
        slot.words[7].store(u64::from(sample.stage_us[4]), Ordering::Relaxed);
        slot.words[0].store(seq + 2, Ordering::Release);
    }

    fn read_slot(&self, index: usize) -> Option<RequestSample> {
        let slot = &self.slots[index];
        for _ in 0..4 {
            let seq = slot.words[0].load(Ordering::Acquire);
            if seq & 1 == 1 {
                continue; // writer mid-update; retry
            }
            let header = slot.words[1].load(Ordering::Relaxed);
            let latency_ns = slot.words[2].load(Ordering::Relaxed);
            let trace_hi = slot.words[3].load(Ordering::Relaxed);
            let trace_lo = slot.words[4].load(Ordering::Relaxed);
            let w5 = slot.words[5].load(Ordering::Relaxed);
            let w6 = slot.words[6].load(Ordering::Relaxed);
            let w7 = slot.words[7].load(Ordering::Relaxed);
            if slot.words[0].load(Ordering::Acquire) != seq {
                continue; // torn: a writer landed while we read
            }
            return Some(RequestSample {
                status: (header & 0xffff) as u16,
                path_tag: ((header >> 16) & 0xff) as u8,
                cache_tag: ((header >> 24) & 0xff) as u8,
                objective_tag: ((header >> 32) & 0xff) as u8,
                latency_ns,
                trace_hi,
                trace_lo,
                stage_us: [
                    (w5 & 0xffff_ffff) as u32,
                    (w5 >> 32) as u32,
                    (w6 & 0xffff_ffff) as u32,
                    (w6 >> 32) as u32,
                    (w7 & 0xffff_ffff) as u32,
                ],
            });
        }
        None
    }

    /// Snapshot of the retained samples, oldest first. Slots being
    /// actively rewritten are skipped rather than surfaced torn.
    pub fn recent(&self) -> Vec<RequestSample> {
        let written = self.pos.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let count = written.min(cap);
        let mut out = Vec::with_capacity(count as usize);
        let first = written - count;
        for n in first..written {
            if let Some(sample) = self.read_slot((n % cap) as usize) {
                out.push(sample);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> RequestSample {
        let mut s = RequestSample {
            path_tag: (i % 5) as u8,
            status: 200,
            cache_tag: (i % 3) as u8,
            objective_tag: (i % 2) as u8,
            latency_ns: i * 1000,
            stage_us: [i as u32, 0, 2, 3, 4],
            ..RequestSample::default()
        };
        s.set_trace_id(&format!("{i:016x}"));
        s
    }

    #[test]
    fn retains_last_capacity_samples_in_order() {
        let ring = FlightRecorder::new(4);
        assert!(ring.recent().is_empty());
        for i in 0..10 {
            ring.record(&sample(i));
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(ring.recorded(), 10);
        let latencies: Vec<u64> = recent.iter().map(|s| s.latency_ns).collect();
        assert_eq!(latencies, vec![6000, 7000, 8000, 9000]);
        assert_eq!(recent[3].trace_id(), format!("{:016x}", 9));
        assert_eq!(recent[3].stage_us, [9, 0, 2, 3, 4]);
        assert_eq!(recent[3].objective_tag, 1);
    }

    #[test]
    fn trace_id_roundtrips_and_truncates() {
        let mut s = RequestSample::default();
        s.set_trace_id("deadbeefcafef00d");
        assert_eq!(s.trace_id(), "deadbeefcafef00d");
        s.set_trace_id("short");
        assert_eq!(s.trace_id(), "short");
        s.set_trace_id("this-id-is-much-longer-than-sixteen");
        assert_eq!(s.trace_id(), "this-id-is-much-");
    }

    #[test]
    fn concurrent_writers_never_surface_torn_fields() {
        use std::sync::Arc;
        let ring = Arc::new(FlightRecorder::new(8));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let mut s = RequestSample {
                            status: 200,
                            latency_ns: t * 1_000_000 + i,
                            ..RequestSample::default()
                        };
                        s.set_trace_id(&format!("{:016x}", t * 1_000_000 + i));
                        ring.record(&s);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for s in ring.recent() {
                // latency and trace id were written together; a torn read
                // would decouple them.
                if !s.trace_id().is_empty() {
                    assert_eq!(s.trace_id(), format!("{:016x}", s.latency_ns));
                }
            }
        }
        for w in writers {
            w.join().expect("writer panicked");
        }
        assert_eq!(ring.recorded(), 2000);
    }
}
