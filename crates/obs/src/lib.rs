//! Slot-level observability for the event-capture engine.
//!
//! The simulation engine reports into the [`Observer`] trait: one hook per
//! slot plus finer-grained hooks for captures, misses, forced idling,
//! outages, and recharge overflow. [`NullObserver`] is the default and
//! monomorphizes to nothing, so uninstrumented runs pay zero cost.
//!
//! Built-in observers compose the hooks into the analyses the paper cares
//! about: [`QomConvergence`] (Theorem 1's finite-`K` trajectory),
//! [`BatteryHistogram`] and [`GapHistogram`] (the stationary distributions
//! behind `U = μ / E[cycle]`), and [`ForcedIdleStreaks`] (the
//! under-provisioning signature). [`ObsSuite`] bundles them all.
//!
//! The [`timing`] module adds globally-gated monotonic spans and counters for
//! hot paths (LP solves, clustering searches, simulation slots); [`trace`]
//! upgrades those spans into per-request trees keyed by a trace id;
//! [`flight`] keeps a lock-free ring of recent request summaries; [`jsonl`]
//! streams every record type to disk as one JSON object per line.

#![forbid(unsafe_code)]

mod convergence;
mod histogram;
mod latency;
mod observer;
mod streaks;
mod suite;

pub mod flight;
pub mod jsonl;
pub mod timing;
pub mod trace;

pub use convergence::{QomConvergence, QomWindow};
pub use flight::{FlightRecorder, RequestSample};
pub use histogram::{BatteryHistogram, GapHistogram, UnitHistogram};
pub use jsonl::{parse_line, JsonObject, JsonValue, JsonlSink};
pub use latency::LatencyHistogram;
pub use observer::{NullObserver, Observer, SlotOutcome};
pub use streaks::ForcedIdleStreaks;
pub use suite::{ObsConfig, ObsSuite, RunCounters};
pub use timing::{span, SpanGuard, SpanStats};
pub use trace::{SpanEvent, TraceGuard, TraceRecord};
