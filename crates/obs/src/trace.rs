//! Per-request trace context: span trees keyed by a `TraceId`.
//!
//! The aggregated registries in [`crate::timing`] answer "how long do LP
//! solves take overall"; this module answers "what happened inside *this*
//! request". A server thread opens a trace with [`start`], which installs a
//! thread-local context. Every [`crate::timing::span`] entered while the
//! context is active additionally records a [`SpanEvent`] carrying the
//! trace id, its own span id, and the id of the span that was live when it
//! started — enough to reconstruct the full tree offline (`evcap trace
//! --tree`). [`TraceGuard::finish`] returns the collected events and tears
//! the context down.
//!
//! Trace ids are 16 lowercase hex characters. Generated ids come from a
//! splitmix64 sequence over a process-global counter — the same mixer the
//! simulator uses for seed derivation — so they are unique within a
//! process without touching the wall clock (the `xtask tidy` clock rule
//! stays intact). Callers may supply an external id instead (e.g. an
//! `X-Request-Id` header) via [`start`].
//!
//! Cost discipline: when no trace is active anywhere, the hook inside
//! `timing::span` is a single relaxed atomic load. While some thread is
//! tracing, non-tracing threads additionally pay one thread-local check.
//! The context itself is recycled across requests on the same thread: the
//! id string and the span/event buffers keep their capacity, so a warmed
//! serve worker runs the whole trace lifecycle without allocating
//! ([`TraceGuard::finish_into`] swaps buffers with a caller-owned record
//! instead of handing out a fresh `Vec`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::jsonl::JsonObject;

/// Span id assigned to the request root; children of the root carry it as
/// their `parent_id`.
pub const ROOT_SPAN_ID: u64 = 1;

/// Number of traces currently active across all threads. Zero means the
/// per-span hook can bail after one relaxed load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Monotonic input to the splitmix64 id generator.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Recycled across traces: `active` flips per request, the buffers
    // keep their capacity. Lazy (non-const) init because `Instant` has no
    // const constructor.
    static CTX: RefCell<Ctx> = RefCell::new(Ctx {
        active: false,
        trace_id: String::new(),
        start: Instant::now(), // placeholder; start() re-stamps it
        next_span: ROOT_SPAN_ID,
        stack: Vec::new(),
        events: Vec::new(),
    });
}

struct Ctx {
    active: bool,
    trace_id: String,
    start: Instant,
    next_span: u64,
    stack: Vec<u64>,
    events: Vec<SpanEvent>,
}

/// One completed span (or instantaneous mark) inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (`spec.solve`, `clustering.search`, ...).
    pub name: &'static str,
    /// This span's id, unique within the trace.
    pub span_id: u64,
    /// The id of the enclosing span ([`ROOT_SPAN_ID`] for top-level spans).
    pub parent_id: u64,
    /// Offset from the trace start, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds (0 for marks).
    pub dur_ns: u64,
    /// Optional annotation (cache outcome label, ...); empty when unused.
    pub label: &'static str,
}

/// Everything collected for one finished trace.
#[derive(Debug, Clone, Default)]
pub struct TraceRecord {
    /// The trace id (external or generated).
    pub trace_id: String,
    /// Completed spans in completion order.
    pub events: Vec<SpanEvent>,
    /// Total wall time from [`start`] to [`TraceGuard::finish`], ns.
    pub total_ns: u64,
}

/// RAII handle for an active trace on the current thread.
///
/// Dropping without [`finish`](TraceGuard::finish) discards the events but
/// still tears the context down, so a panicking request cannot leak a
/// context into the next request served by the same thread.
#[derive(Debug)]
pub struct TraceGuard {
    finished: bool,
}

const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Generates a fresh 16-hex-char trace id (no wall-clock entropy).
pub fn next_trace_id() -> String {
    let mut buf = [0u8; 16];
    next_trace_id_into(&mut buf).to_owned()
}

/// Allocation-free variant of [`next_trace_id`]: hex-encodes the next id
/// into `buf` and returns it as `&str`. The serve hot loop uses this so an
/// untraced-by-the-client request costs no heap allocation for its id.
pub fn next_trace_id_into(buf: &mut [u8; 16]) -> &str {
    let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(n);
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for (i, b) in buf.iter_mut().enumerate() {
        *b = HEX[((id >> ((15 - i) * 4)) & 0xf) as usize];
    }
    std::str::from_utf8(buf).unwrap_or("0000000000000000")
}

/// Opens a trace with the given id on the current thread.
///
/// If a trace is already active on this thread it is discarded first (a
/// server thread never nests requests, so this only matters after a
/// panic-and-recover path).
pub fn start(trace_id: &str) -> TraceGuard {
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        if !ctx.active {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        ctx.active = true;
        ctx.trace_id.clear();
        ctx.trace_id.push_str(trace_id);
        ctx.start = Instant::now();
        ctx.next_span = ROOT_SPAN_ID;
        ctx.stack.clear();
        ctx.stack.push(ROOT_SPAN_ID);
        ctx.events.clear();
    });
    TraceGuard { finished: false }
}

impl TraceGuard {
    /// Closes the trace and returns everything collected.
    pub fn finish(self) -> TraceRecord {
        let mut record = TraceRecord::default();
        self.finish_into(&mut record);
        record
    }

    /// Closes the trace, filling `out` in place. Returns `true` when a
    /// trace was actually active (and `out` is valid), `false` otherwise.
    ///
    /// The event buffer is *swapped* with `out.events` rather than moved,
    /// so a caller that reuses the same `TraceRecord` across requests
    /// keeps both buffers' capacity — the serve hot loop collects a full
    /// span tree without allocating.
    pub fn finish_into(mut self, out: &mut TraceRecord) -> bool {
        self.finished = true;
        CTX.with(|cell| {
            let mut ctx = cell.borrow_mut();
            if !ctx.active {
                out.events.clear();
                return false;
            }
            ctx.active = false;
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
            out.total_ns = duration_ns(ctx.start.elapsed());
            out.trace_id.clear();
            out.trace_id.push_str(&ctx.trace_id);
            std::mem::swap(&mut out.events, &mut ctx.events);
            // The swapped-in buffer may hold a previous request's events;
            // clear now so a dropped (never-restarted) context can't leak
            // them into a later trace.
            ctx.events.clear();
            true
        })
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.finished {
            deactivate();
        }
    }
}

fn deactivate() {
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        if ctx.active {
            ctx.active = false;
            ctx.events.clear();
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    });
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// True when *some* thread has an active trace. One relaxed load; the
/// fast-path gate for the `timing::span` hook.
#[inline]
pub fn maybe_active() -> bool {
    ACTIVE.load(Ordering::Relaxed) > 0
}

/// A token returned by `enter`; pass it back to `exit` when the span
/// completes.
#[derive(Debug)]
pub struct SpanToken {
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
}

/// Registers a span start against the current thread's trace, if any.
pub(crate) fn enter(_name: &'static str) -> Option<SpanToken> {
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        if !ctx.active {
            return None;
        }
        ctx.next_span += 1;
        let span_id = ctx.next_span;
        let parent_id = *ctx.stack.last().unwrap_or(&ROOT_SPAN_ID);
        ctx.stack.push(span_id);
        Some(SpanToken {
            span_id,
            parent_id,
            start_ns: duration_ns(ctx.start.elapsed()),
        })
    })
}

/// Completes a span started with [`enter`]. `record` is false when the
/// guard was cancelled: the stack still unwinds but no event is kept.
pub(crate) fn exit(name: &'static str, token: SpanToken, record: bool) {
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        if !ctx.active {
            return;
        }
        // Unwind to (and including) this span. Tolerates skipped exits so
        // a leaked guard cannot corrupt parentage for the rest of the
        // request.
        while let Some(top) = ctx.stack.pop() {
            if top == token.span_id {
                break;
            }
        }
        if record {
            let end_ns = duration_ns(ctx.start.elapsed());
            ctx.events.push(SpanEvent {
                name,
                span_id: token.span_id,
                parent_id: token.parent_id,
                start_ns: token.start_ns,
                dur_ns: end_ns.saturating_sub(token.start_ns),
                label: "",
            });
        }
    });
}

/// Records an instantaneous annotation (e.g. a cache outcome) as a
/// zero-duration child of the currently open span. No-op without an
/// active trace on this thread.
pub fn mark(name: &'static str, label: &'static str) {
    if !maybe_active() {
        return;
    }
    CTX.with(|cell| {
        let mut ctx = cell.borrow_mut();
        if !ctx.active {
            return;
        }
        ctx.next_span += 1;
        let span_id = ctx.next_span;
        let parent_id = *ctx.stack.last().unwrap_or(&ROOT_SPAN_ID);
        let at = duration_ns(ctx.start.elapsed());
        ctx.events.push(SpanEvent {
            name,
            span_id,
            parent_id,
            start_ns: at,
            dur_ns: 0,
            label,
        });
    });
}

/// Serializes one trace event as a JSONL record (micros, like the other
/// obs records).
pub fn event_record(trace_id: &str, event: &SpanEvent) -> JsonObject {
    let mut obj = JsonObject::with_type("trace_span");
    obj.field_str("trace_id", trace_id);
    obj.field_u64("span_id", event.span_id);
    obj.field_u64("parent_id", event.parent_id);
    obj.field_str("name", event.name);
    if !event.label.is_empty() {
        obj.field_str("label", event.label);
    }
    obj.field_f64("start_us", event.start_ns as f64 / 1e3);
    obj.field_f64("dur_us", event.dur_ns as f64 / 1e3);
    obj
}

/// Serializes the request root as a JSONL record so the span tree has an
/// explicit single root (span id [`ROOT_SPAN_ID`], no parent).
pub fn root_record(trace_id: &str, name: &str, total_ns: u64) -> JsonObject {
    let mut obj = JsonObject::with_type("trace_span");
    obj.field_str("trace_id", trace_id);
    obj.field_u64("span_id", ROOT_SPAN_ID);
    obj.field_u64("parent_id", 0);
    obj.field_str("name", name);
    obj.field_f64("start_us", 0.0);
    obj.field_f64("dur_us", total_ns as f64 / 1e3);
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;

    #[test]
    fn generated_ids_are_hex_and_distinct() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let guard = start("t-nest");
        {
            let _outer = timing::span("test.outer");
            {
                let _inner = timing::span("test.inner");
            }
            mark("test.mark", "hit");
        }
        let rec = guard.finish();
        assert_eq!(rec.trace_id, "t-nest");
        let inner = rec
            .events
            .iter()
            .find(|e| e.name == "test.inner")
            .expect("inner recorded");
        let outer = rec
            .events
            .iter()
            .find(|e| e.name == "test.outer")
            .expect("outer recorded");
        let mark = rec
            .events
            .iter()
            .find(|e| e.name == "test.mark")
            .expect("mark recorded");
        assert_eq!(outer.parent_id, ROOT_SPAN_ID);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(mark.parent_id, outer.span_id);
        assert_eq!(mark.label, "hit");
        assert_eq!(mark.dur_ns, 0);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn cancel_unwinds_without_recording() {
        let guard = start("t-cancel");
        {
            let outer = timing::span("test.c_outer");
            outer.cancel();
            let _sibling = timing::span("test.c_sib");
        }
        let rec = guard.finish();
        assert!(rec.events.iter().all(|e| e.name != "test.c_outer"));
        let sib = rec
            .events
            .iter()
            .find(|e| e.name == "test.c_sib")
            .expect("sibling recorded");
        // The cancelled span unwound, so the sibling hangs off the root.
        assert_eq!(sib.parent_id, ROOT_SPAN_ID);
    }

    #[test]
    fn no_context_means_no_events_and_drop_tears_down() {
        {
            let _span = timing::span("test.untraced");
        }
        let guard = start("t-drop");
        assert!(maybe_active());
        drop(guard);
        let rec = start("t-after").finish();
        assert!(rec.events.is_empty());
    }

    #[test]
    fn finish_into_reuses_buffers_across_traces() {
        let mut rec = TraceRecord::default();

        let guard = start("t-reuse-1");
        {
            let _span = timing::span("test.reuse");
        }
        assert!(guard.finish_into(&mut rec));
        assert_eq!(rec.trace_id, "t-reuse-1");
        assert_eq!(rec.events.len(), 1);

        // Second trace into the same record: old events must not leak.
        let guard = start("t-reuse-2");
        mark("test.reuse_mark", "hit");
        assert!(guard.finish_into(&mut rec));
        assert_eq!(rec.trace_id, "t-reuse-2");
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.events[0].name, "test.reuse_mark");

        // No active trace: finish_into reports false and clears the record.
        let guard = TraceGuard { finished: false };
        assert!(!guard.finish_into(&mut rec));
        assert!(rec.events.is_empty());
    }

    #[test]
    fn records_have_expected_shape() {
        let event = SpanEvent {
            name: "spec.solve",
            span_id: 2,
            parent_id: 1,
            start_ns: 1500,
            dur_ns: 2500,
            label: "",
        };
        let line = event_record("abc123", &event).finish();
        assert!(line.contains("\"type\":\"trace_span\""));
        assert!(line.contains("\"trace_id\":\"abc123\""));
        assert!(line.contains("\"parent_id\":1"));
        assert!(!line.contains("\"label\""));
        let root = root_record("abc123", "POST /v1/solve", 4_000).finish();
        assert!(root.contains("\"span_id\":1"));
        assert!(root.contains("\"parent_id\":0"));
        assert!(root.contains("\"dur_us\":4"));
    }
}
