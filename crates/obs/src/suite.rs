//! The standard observer suite: everything `evcap simulate --obs-out` wants.
//!
//! [`ObsSuite`] composes the built-in observers — windowed QoM convergence,
//! battery-level histogram, inter-capture gap histogram, forced-idle streaks —
//! plus a handful of scalar counters, behind a single [`Observer`] impl. After
//! a run it can stream every record to a [`JsonlSink`] and render a compact
//! human-readable summary table.

use std::io::{self, Write};

use crate::convergence::QomConvergence;
use crate::histogram::{BatteryHistogram, GapHistogram};
use crate::jsonl::{JsonObject, JsonlSink};
use crate::observer::{Observer, SlotOutcome};
use crate::streaks::ForcedIdleStreaks;
use crate::timing;

/// Scalar event counts accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunCounters {
    /// Slots delivered to the suite (measured or not).
    pub slots: u64,
    /// Slots counted toward QoM.
    pub measured_slots: u64,
    /// Events that occurred in measured slots.
    pub events: u64,
    /// Events captured in measured slots.
    pub captures: u64,
    /// Events missed in measured slots.
    pub misses: u64,
    /// Sensor-slots spent offline in injected outages.
    pub outage_slots: u64,
    /// Total recharge energy (in units) lost to full batteries.
    pub overflow_lost_units: f64,
}

impl RunCounters {
    /// Serializes the counters as one JSONL record.
    pub fn export_record(&self) -> JsonObject {
        let mut obj = JsonObject::with_type("run_counters");
        obj.field_u64("slots", self.slots);
        obj.field_u64("measured_slots", self.measured_slots);
        obj.field_u64("events", self.events);
        obj.field_u64("captures", self.captures);
        obj.field_u64("misses", self.misses);
        obj.field_u64("outage_slots", self.outage_slots);
        obj.field_f64("overflow_lost_units", self.overflow_lost_units);
        obj
    }
}

/// Configuration for [`ObsSuite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// QoM-convergence window length in slots.
    pub qom_window: u64,
    /// Battery histogram bin count.
    pub battery_bins: usize,
    /// Battery sampling period in slots.
    pub battery_period: u64,
    /// Largest inter-capture gap with its own histogram bin.
    pub gap_linear_max: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            qom_window: 1_000,
            battery_bins: 20,
            battery_period: 16,
            gap_linear_max: 256,
        }
    }
}

/// The composite observer used by the CLI's `--obs-out` path.
#[derive(Debug, Clone)]
pub struct ObsSuite {
    convergence: QomConvergence,
    battery: BatteryHistogram,
    gaps: GapHistogram,
    streaks: ForcedIdleStreaks,
    counters: RunCounters,
}

impl ObsSuite {
    /// Builds the suite from a configuration.
    pub fn new(config: ObsConfig) -> Self {
        Self {
            convergence: QomConvergence::new(config.qom_window),
            battery: BatteryHistogram::new(config.battery_bins, config.battery_period),
            gaps: GapHistogram::new(config.gap_linear_max),
            streaks: ForcedIdleStreaks::new(),
            counters: RunCounters::default(),
        }
    }

    /// Closes any partial state (trailing QoM window, open idle streaks).
    /// Call once after the run, before exporting.
    pub fn seal(&mut self) {
        self.convergence.flush_partial();
        self.streaks.flush();
    }

    /// The scalar counters.
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// The QoM-convergence series (completed windows).
    pub fn convergence(&self) -> &QomConvergence {
        &self.convergence
    }

    /// The battery-level histogram.
    pub fn battery(&self) -> &BatteryHistogram {
        &self.battery
    }

    /// The inter-capture gap histogram.
    pub fn gaps(&self) -> &GapHistogram {
        &self.gaps
    }

    /// The forced-idle streak tracker.
    pub fn streaks(&self) -> &ForcedIdleStreaks {
        &self.streaks
    }

    /// Streams every record to the sink: run counters, the QoM series, both
    /// histograms, forced-idle streaks, then any drained timing spans and
    /// counters from the global registry.
    ///
    /// # Errors
    ///
    /// Propagates the first sink write failure.
    pub fn export<W: Write>(&self, sink: &mut JsonlSink<W>) -> io::Result<()> {
        sink.write(self.counters.export_record())?;
        let mut result = Ok(());
        self.convergence.export_records(|obj| {
            if result.is_ok() {
                result = sink.write(obj);
            }
        });
        result?;
        sink.write(self.battery.export_record())?;
        sink.write(self.gaps.export_record())?;
        sink.write(self.streaks.export_record())?;
        for (name, stats) in timing::drain_spans() {
            sink.write(timing::span_record(name, &stats))?;
        }
        for (name, value) in timing::drain_counters() {
            sink.write(timing::counter_record(name, value))?;
        }
        Ok(())
    }

    /// Renders the human-readable summary table.
    pub fn summary(&self) -> String {
        let c = &self.counters;
        let qom = if c.events == 0 {
            1.0
        } else {
            c.captures as f64 / c.events as f64
        };
        let mut out = String::new();
        out.push_str("observability summary\n");
        out.push_str(&format!(
            "  slots              {:>12}  (measured {})\n",
            c.slots, c.measured_slots
        ));
        out.push_str(&format!(
            "  events             {:>12}  captured {}  missed {}\n",
            c.events, c.captures, c.misses
        ));
        out.push_str(&format!("  qom                {qom:>12.4}\n"));
        let windows = self.convergence.series();
        if let (Some(first), Some(last)) = (windows.first(), windows.last()) {
            out.push_str(&format!(
                "  qom windows        {:>12}  first {:.4}  last {:.4}\n",
                windows.len(),
                first.window_qom(),
                last.window_qom()
            ));
        }
        out.push_str(&format!(
            "  mean capture gap   {:>12.2}  max {}\n",
            self.gaps.mean(),
            self.gaps.max()
        ));
        out.push_str(&format!(
            "  mean battery fill  {:>12.4}  ({} samples)\n",
            self.battery.histogram().mean(),
            self.battery.histogram().samples()
        ));
        let (longest, sensor) = self.streaks.longest();
        out.push_str(&format!(
            "  forced idle        {:>12}  streaks {}  longest {} (sensor {})\n",
            self.streaks.total(),
            self.streaks.streaks(),
            longest,
            sensor
        ));
        if c.outage_slots > 0 {
            out.push_str(&format!("  outage slots       {:>12}\n", c.outage_slots));
        }
        if c.overflow_lost_units > 0.0 {
            out.push_str(&format!(
                "  overflow lost      {:>12.1} units\n",
                c.overflow_lost_units
            ));
        }
        out
    }
}

impl Observer for ObsSuite {
    #[inline]
    fn on_slot(&mut self, outcome: &SlotOutcome) {
        self.counters.slots += 1;
        if outcome.measured {
            self.counters.measured_slots += 1;
            if outcome.event {
                self.counters.events += 1;
            }
        }
        self.convergence.on_slot(outcome);
    }

    #[inline]
    fn on_capture(&mut self, slot: u64, sensor: usize, gap: u64) {
        self.counters.captures += 1;
        self.gaps.on_capture(slot, sensor, gap);
    }

    #[inline]
    fn on_miss(&mut self, slot: u64) {
        self.counters.misses += 1;
        self.gaps.on_miss(slot);
    }

    #[inline]
    fn on_forced_idle(&mut self, slot: u64, sensor: usize, battery_fraction: f64) {
        self.streaks.on_forced_idle(slot, sensor, battery_fraction);
    }

    #[inline]
    fn on_outage(&mut self, slot: u64, sensor: usize) {
        self.counters.outage_slots += 1;
        let _ = (slot, sensor);
    }

    #[inline]
    fn on_recharge_overflow(&mut self, slot: u64, sensor: usize, lost_units: f64) {
        self.counters.overflow_lost_units += lost_units;
        let _ = (slot, sensor);
    }

    #[inline]
    fn wants_battery_levels(&self) -> bool {
        true
    }

    #[inline]
    fn on_battery_levels(&mut self, slot: u64, fractions: &[f64]) {
        self.battery.on_battery_levels(slot, fractions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::{parse_line, JsonValue};

    fn outcome(t: u64, event: bool, captured: bool) -> SlotOutcome {
        SlotOutcome {
            slot: t,
            owner: 0,
            state: 1,
            wanted: true,
            active: true,
            event,
            captured,
            measured: true,
        }
    }

    fn run_small_suite() -> ObsSuite {
        let mut suite = ObsSuite::new(ObsConfig {
            qom_window: 4,
            battery_bins: 8,
            battery_period: 2,
            gap_linear_max: 32,
        });
        let mut last_capture = 0u64;
        for t in 1..=10 {
            let event = t % 2 == 0;
            let captured = t % 4 == 0;
            if captured {
                suite.on_capture(t, 0, t - last_capture);
                last_capture = t;
            } else if event {
                suite.on_miss(t);
            }
            if t == 7 {
                suite.on_forced_idle(t, 1, 0.05);
            }
            suite.on_battery_levels(t, &[0.5, 0.25]);
            suite.on_slot(&outcome(t, event, captured));
        }
        suite.on_outage(11, 0);
        suite.on_recharge_overflow(11, 0, 1.5);
        suite.seal();
        suite
    }

    #[test]
    fn counters_track_the_run() {
        let suite = run_small_suite();
        let c = suite.counters();
        assert_eq!(c.slots, 10);
        assert_eq!(c.events, 5);
        assert_eq!(c.captures, 2);
        assert_eq!(c.misses, 3);
        assert_eq!(c.outage_slots, 1);
        assert!((c.overflow_lost_units - 1.5).abs() < 1e-12);
        assert_eq!(suite.streaks().total(), 1);
    }

    #[test]
    fn export_produces_parseable_jsonl_with_expected_types() {
        let suite = run_small_suite();
        let mut sink = JsonlSink::new(Vec::new());
        suite.export(&mut sink).unwrap();
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let types: Vec<String> = text
            .lines()
            .map(|line| {
                parse_line(line)
                    .expect("line parses")
                    .get("type")
                    .and_then(JsonValue::as_str)
                    .expect("has type")
                    .to_owned()
            })
            .collect();
        assert!(types.contains(&"run_counters".to_owned()));
        assert!(types.contains(&"qom_window".to_owned()));
        assert!(types.contains(&"battery_histogram".to_owned()));
        assert!(types.contains(&"gap_histogram".to_owned()));
        assert!(types.contains(&"forced_idle".to_owned()));
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let suite = run_small_suite();
        let summary = suite.summary();
        assert!(summary.contains("observability summary"));
        assert!(summary.contains("qom"));
        assert!(summary.contains("forced idle"));
        assert!(summary.contains("outage slots"));
        assert!(summary.contains("overflow lost"));
    }

    #[test]
    fn suite_requests_battery_levels() {
        let suite = ObsSuite::new(ObsConfig::default());
        assert!(suite.wants_battery_levels());
    }
}
