//! Lock-free latency histogram with power-of-two buckets.
//!
//! The policy server records one sample per HTTP request, concurrently from
//! every worker thread, so the histogram is a fixed array of atomic
//! counters: `observe_ns` is two relaxed fetch-adds and a `leading_zeros`,
//! no locks, no allocation. Bucket `b` holds samples with
//! `floor(log2(ns)) == b`, giving ~2× resolution across the full `u64`
//! nanosecond range — plenty for p50/p99 service-latency reporting, where
//! the interesting differences are orders of magnitude.
//!
//! Quantiles are computed from a walk over the bucket counts and report the
//! bucket's *upper bound* (clamped to the observed maximum), so a reported
//! p99 never understates the true p99 by more than the bucket width.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::jsonl::JsonObject;

const BUCKETS: usize = 64;

/// A concurrent histogram of durations in nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        // floor(log2(ns)) for ns ≥ 1; zero-duration samples land in bucket 0.
        (63 - (ns | 1).leading_zeros()) as usize
    }

    /// Records one duration sample.
    pub fn observe_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one [`std::time::Duration`] sample (saturating at `u64` ns).
    pub fn observe(&self, elapsed: std::time::Duration) {
        self.observe_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean sample in nanoseconds; 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.total_ns.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in nanoseconds: the upper bound of the
    /// bucket containing the quantile sample, clamped to the observed
    /// maximum. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                let upper = if b >= 63 { u64::MAX } else { (2u64 << b) - 1 };
                return upper.min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// Total of all recorded samples in nanoseconds (saturating).
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Cumulative buckets in Prometheus form: `(upper_bound_ns, count of
    /// samples ≤ upper_bound)`, one entry per power-of-two bucket up to
    /// the last non-empty bucket. The final entry's count equals
    /// [`count`](Self::count) (the implicit `+Inf` bucket). Empty
    /// histograms return a single zero-count bucket so a scrape always
    /// has at least one `le` series.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut last = 0;
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        for (b, &c) in counts.iter().enumerate() {
            if c > 0 {
                last = b;
            }
        }
        let mut out = Vec::with_capacity(last + 1);
        let mut cumulative = 0u64;
        for (b, &c) in counts.iter().enumerate().take(last + 1) {
            cumulative += c;
            let upper = if b >= 63 { u64::MAX } else { (2u64 << b) - 1 };
            out.push((upper, cumulative));
        }
        out
    }

    /// Serializes the full bucket layout as one JSONL record
    /// (`type: "latency_histogram"`): parallel arrays `le_us` (bucket
    /// upper bounds, µs) and `cumulative` (samples ≤ bound). This is the
    /// same cumulative-bucket shape the serve Prometheus exposition
    /// renders, so offline dumps and scrapes diff one format.
    pub fn record_buckets(&self, name: &str) -> JsonObject {
        let buckets = self.cumulative_buckets();
        let le_us: Vec<f64> = buckets.iter().map(|&(ns, _)| ns as f64 / 1e3).collect();
        let cumulative: Vec<u64> = buckets.iter().map(|&(_, c)| c).collect();
        let mut obj = JsonObject::with_type("latency_histogram");
        obj.field_str("name", name);
        obj.field_u64("count", self.count());
        obj.field_f64("sum_us", self.total_ns() as f64 / 1e3);
        obj.field_f64("max_us", self.max_ns() as f64 / 1e3);
        obj.field_f64_array("le_us", &le_us);
        obj.field_u64_array("cumulative", &cumulative);
        obj
    }

    /// Serializes the histogram as one JSONL record (`type: "latency"`).
    pub fn record(&self, name: &str) -> JsonObject {
        let mut obj = JsonObject::with_type("latency");
        obj.field_str("name", name);
        obj.field_u64("count", self.count());
        obj.field_f64("mean_us", self.mean_ns() / 1e3);
        obj.field_f64("p50_us", self.quantile_ns(0.50) as f64 / 1e3);
        obj.field_f64("p90_us", self.quantile_ns(0.90) as f64 / 1e3);
        obj.field_f64("p99_us", self.quantile_ns(0.99) as f64 / 1e3);
        obj.field_f64("max_us", self.max_ns() as f64 / 1e3);
        obj
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn buckets_follow_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.observe_ns(1_000); // ~1 µs
        }
        h.observe_ns(1_000_000); // one 1 ms outlier
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.50);
        assert!((1_000..=2_047).contains(&p50), "p50 = {p50}");
        // p99 lands on the 99th sample (still 1 µs); p100 sees the outlier.
        assert!(h.quantile_ns(0.99) <= 2_047);
        assert_eq!(h.quantile_ns(1.0), 1_000_000);
        assert_eq!(h.max_ns(), 1_000_000);
        assert!(h.mean_ns() > 1_000.0 && h.mean_ns() < 12_000.0);
    }

    #[test]
    fn quantile_upper_bound_clamps_to_max() {
        let h = LatencyHistogram::new();
        h.observe_ns(1_500);
        assert_eq!(h.quantile_ns(0.5), 1_500);
    }

    #[test]
    fn concurrent_observes_are_counted() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1_000 {
                        h.observe_ns(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let h = LatencyHistogram::new();
        assert_eq!(h.cumulative_buckets(), vec![(1, 0)]);
        for ns in [100, 1_000, 1_500, 1_000_000] {
            h.observe_ns(ns);
        }
        let buckets = h.cumulative_buckets();
        assert!(buckets
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        let (last_le, last_count) = *buckets.last().expect("non-empty");
        assert_eq!(last_count, h.count());
        assert!(last_le >= h.max_ns());
        // The 1 µs pair shares one bucket: cumulative count 3 at le 2047.
        assert!(buckets.contains(&(2_047, 3)));
    }

    #[test]
    fn bucket_record_round_trips_through_the_parser() {
        let h = LatencyHistogram::new();
        h.observe_ns(5_000);
        h.observe_ns(50_000);
        let line = h.record_buckets("loadgen").finish();
        let value = crate::jsonl::parse_line(&line).expect("valid JSON");
        assert_eq!(
            value.get("type").and_then(crate::JsonValue::as_str),
            Some("latency_histogram")
        );
        let le = value.get("le_us").and_then(crate::JsonValue::as_array);
        let cum = value.get("cumulative").and_then(crate::JsonValue::as_array);
        let (le, cum) = (le.expect("le_us"), cum.expect("cumulative"));
        assert_eq!(le.len(), cum.len());
        assert_eq!(cum.last().and_then(crate::JsonValue::as_f64), Some(2.0));
    }

    #[test]
    fn record_round_trips_through_the_parser() {
        let h = LatencyHistogram::new();
        h.observe(std::time::Duration::from_micros(250));
        let line = h.record("serve.request").finish();
        let value = crate::jsonl::parse_line(&line).expect("valid JSON");
        assert_eq!(
            value.get("type").and_then(crate::JsonValue::as_str),
            Some("latency")
        );
        assert_eq!(
            value.get("name").and_then(crate::JsonValue::as_str),
            Some("serve.request")
        );
        assert_eq!(
            value.get("count").and_then(crate::JsonValue::as_f64),
            Some(1.0)
        );
        assert!(value
            .get("p99_us")
            .and_then(crate::JsonValue::as_f64)
            .is_some_and(|v| v > 0.0));
    }
}
