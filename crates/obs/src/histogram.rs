//! Fixed-bin histograms: battery fill levels and inter-capture gaps.

use crate::jsonl::JsonObject;
use crate::observer::Observer;

/// A histogram over `[0, 1]` with equal-width bins (values outside are
/// clamped into the edge bins).
#[derive(Debug, Clone, PartialEq)]
pub struct UnitHistogram {
    counts: Vec<u64>,
    samples: u64,
    sum: f64,
}

impl UnitHistogram {
    /// Creates a histogram with `bins` equal-width bins (minimum 1).
    pub fn new(bins: usize) -> Self {
        Self {
            counts: vec![0; bins.max(1)],
            samples: 0,
            sum: 0.0,
        }
    }

    /// Records one value (clamped into `[0, 1]`).
    #[inline]
    pub fn record(&mut self, value: f64) {
        let clamped = value.clamp(0.0, 1.0);
        let bins = self.counts.len();
        let idx = ((clamped * bins as f64) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.samples += 1;
        self.sum += clamped;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean of the recorded (clamped) values; 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }
}

/// Samples every sensor's battery fill fraction on a fixed period and
/// histograms the levels — the battery-level distribution the paper's
/// asymptotic argument is about (levels pinned near empty mean forced
/// idling; near full mean overflow waste).
#[derive(Debug, Clone)]
pub struct BatteryHistogram {
    histogram: UnitHistogram,
    period: u64,
}

impl BatteryHistogram {
    /// Histograms into `bins` bins, sampling every `period` slots.
    pub fn new(bins: usize, period: u64) -> Self {
        Self {
            histogram: UnitHistogram::new(bins),
            period: period.max(1),
        }
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &UnitHistogram {
        &self.histogram
    }

    /// Serializes the histogram as one JSONL record.
    pub fn export_record(&self) -> JsonObject {
        let mut obj = JsonObject::with_type("battery_histogram");
        obj.field_usize("bins", self.histogram.counts().len());
        obj.field_u64("period", self.period);
        obj.field_u64("samples", self.histogram.samples());
        obj.field_f64("mean_fill", self.histogram.mean());
        obj.field_u64_array("counts", self.histogram.counts());
        obj
    }
}

impl Observer for BatteryHistogram {
    #[inline]
    fn wants_battery_levels(&self) -> bool {
        true
    }

    #[inline]
    fn on_battery_levels(&mut self, slot: u64, fractions: &[f64]) {
        if slot.is_multiple_of(self.period) {
            for &fraction in fractions {
                self.histogram.record(fraction);
            }
        }
    }
}

/// Histograms the gaps between consecutive fleet-wide captures, in slots.
///
/// Gaps up to `linear_max` get their own bin; longer gaps land in a shared
/// overflow bin. The mean inter-capture gap relates directly to the paper's
/// `E[cycle]` analysis (`U = μ / E[cycle]`).
#[derive(Debug, Clone)]
pub struct GapHistogram {
    counts: Vec<u64>,
    overflow: u64,
    samples: u64,
    sum: u64,
    max: u64,
}

impl GapHistogram {
    /// Tracks gaps `1..=linear_max` exactly; longer gaps go to the overflow
    /// bin.
    pub fn new(linear_max: usize) -> Self {
        Self {
            counts: vec![0; linear_max.max(1)],
            overflow: 0,
            samples: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one gap (in slots, ≥ 1).
    #[inline]
    pub fn record(&mut self, gap: u64) {
        let idx = gap.max(1) as usize - 1;
        match self.counts.get_mut(idx) {
            Some(slot) => *slot += 1,
            None => self.overflow += 1,
        }
        self.samples += 1;
        self.sum += gap;
        self.max = self.max.max(gap);
    }

    /// Counts for gaps `1..=linear_max` (index `i` holds gap `i + 1`).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Gaps longer than the linear range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of recorded gaps.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean recorded gap; 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Longest recorded gap.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Serializes the histogram as one JSONL record (trailing zero bins are
    /// trimmed to keep records compact).
    pub fn export_record(&self) -> JsonObject {
        let mut obj = JsonObject::with_type("gap_histogram");
        obj.field_u64("samples", self.samples);
        obj.field_f64("mean_gap", self.mean());
        obj.field_u64("max_gap", self.max);
        obj.field_u64("overflow", self.overflow);
        let trimmed = match self.counts.iter().rposition(|&c| c > 0) {
            Some(last) => &self.counts[..=last],
            None => &[],
        };
        obj.field_u64_array("counts", trimmed);
        obj
    }
}

impl Observer for GapHistogram {
    #[inline]
    fn on_capture(&mut self, _slot: u64, _sensor: usize, gap: u64) {
        self.record(gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_histogram_bins_and_clamps() {
        let mut h = UnitHistogram::new(4);
        h.record(0.0);
        h.record(0.26);
        h.record(0.6);
        h.record(0.99);
        h.record(1.0); // exactly 1.0 clamps into the last bin
        h.record(-3.0);
        h.record(7.0);
        assert_eq!(h.counts(), &[2, 1, 1, 3]);
        assert_eq!(h.samples(), 7);
        assert!(h.mean() > 0.0 && h.mean() < 1.0);
    }

    #[test]
    fn battery_histogram_samples_on_period() {
        let mut b = BatteryHistogram::new(10, 5);
        b.on_battery_levels(1, &[0.5, 0.9]); // skipped: 1 % 5 != 0
        b.on_battery_levels(5, &[0.5, 0.9]);
        b.on_battery_levels(10, &[0.1]);
        assert_eq!(b.histogram().samples(), 3);
        assert!(b.wants_battery_levels());
        let record = b.export_record().finish();
        assert!(record.contains("\"type\":\"battery_histogram\""));
        assert!(record.contains("\"samples\":3"));
    }

    #[test]
    fn gap_histogram_linear_and_overflow() {
        let mut g = GapHistogram::new(4);
        g.record(1);
        g.record(1);
        g.record(4);
        g.record(9); // overflow
        assert_eq!(g.counts(), &[2, 0, 0, 1]);
        assert_eq!(g.overflow(), 1);
        assert_eq!(g.samples(), 4);
        assert_eq!(g.max(), 9);
        assert!((g.mean() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn gap_histogram_observes_captures() {
        let mut g = GapHistogram::new(16);
        g.on_capture(10, 0, 10);
        g.on_capture(14, 1, 4);
        assert_eq!(g.samples(), 2);
        let record = g.export_record().finish();
        assert!(record.contains("\"mean_gap\":7"));
    }

    #[test]
    fn export_trims_trailing_zeros() {
        let mut g = GapHistogram::new(64);
        g.record(2);
        let record = g.export_record().finish();
        assert!(record.contains("\"counts\":[0,1]"), "{record}");
    }
}
