//! Monotonic-clock timing spans and global counters for hot paths.
//!
//! Spans are *globally gated*: when disabled (the default) entering a span
//! is one relaxed atomic load and drop is free, so permanently instrumented
//! hot paths (LP solves, clustering searches, whole simulation runs) cost
//! nothing in production. Enable collection with [`set_enabled`], run the
//! workload, then [`drain_spans`] the aggregated per-name statistics.
//!
//! Spans aggregate under a `&'static str` name — count, total, min, max —
//! rather than recording individual samples, so memory stays bounded no
//! matter how hot the instrumented path is. Counters ([`add_count`]) share
//! the same gate and registry discipline.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::jsonl::JsonObject;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SPANS: Mutex<BTreeMap<&'static str, SpanStats>> = Mutex::new(BTreeMap::new());
static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total time across spans, nanoseconds.
    pub total_ns: u128,
    /// Shortest span, nanoseconds.
    pub min_ns: u128,
    /// Longest span, nanoseconds.
    pub max_ns: u128,
}

impl SpanStats {
    /// Mean span duration in nanoseconds; 0.0 with no spans.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    fn merge_sample(&mut self, ns: u128) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }
}

/// Turns span/counter collection on or off (off by default).
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether collection is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An RAII timing span: construct via [`span`], drop to record.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    trace: Option<crate::trace::SpanToken>,
    cancelled: bool,
}

impl SpanGuard {
    /// Disarms the guard (records nothing on drop; an active trace still
    /// unwinds its span stack so later spans keep correct parents).
    pub fn cancel(mut self) {
        self.start = None;
        self.cancelled = true;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_sample(self.name, start.elapsed());
        }
        if let Some(token) = self.trace.take() {
            crate::trace::exit(self.name, token, !self.cancelled);
        }
    }
}

/// Starts a timing span. When both aggregate collection and request
/// tracing are off this is two relaxed atomic loads and the returned
/// guard is inert. An active [`crate::trace`] context on this thread
/// additionally records the span as a tree event, independent of the
/// aggregate gate.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let trace = if crate::trace::maybe_active() {
        crate::trace::enter(name)
    } else {
        None
    };
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
        trace,
        cancelled: false,
    }
}

/// A manual accumulating stopwatch for phase timing inside hot loops.
///
/// [`span`] records one sample per guard drop, taking the registry lock
/// each time — fine once per run, ruinous once per slot. A `Stopwatch`
/// instead accumulates many `start`/`stop` intervals locally and touches
/// the registry exactly once, in [`Stopwatch::record`]. Like spans it is
/// armed by the global gate at construction: when collection is off,
/// `start`/`stop` are a branch on a local bool and `record` is a no-op,
/// so permanently instrumented loops cost almost nothing disabled.
///
/// The batched simulation engine uses one stopwatch per phase (recharge
/// sweep, decision sweep, event/capture sweep) to attribute a run's time
/// without perturbing what it measures.
#[derive(Debug)]
pub struct Stopwatch {
    armed: bool,
    started: Option<Instant>,
    total: Duration,
}

impl Stopwatch {
    /// Creates a stopwatch, armed only if collection is currently enabled.
    pub fn new() -> Self {
        Self {
            armed: enabled(),
            started: None,
            total: Duration::ZERO,
        }
    }

    /// Starts (or restarts) an interval. No-op when unarmed.
    #[inline]
    pub fn start(&mut self) {
        if self.armed {
            self.started = Some(Instant::now());
        }
    }

    /// Ends the current interval, adding it to the running total. No-op
    /// when unarmed or when no interval is open.
    #[inline]
    pub fn stop(&mut self) {
        if let Some(started) = self.started.take() {
            self.total += started.elapsed();
        }
    }

    /// Records the accumulated total as one sample under `name` (closing
    /// any open interval first) and consumes the stopwatch.
    pub fn record(mut self, name: &'static str) {
        self.stop();
        if self.armed {
            record_sample(name, self.total);
        }
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Records one explicit duration sample under `name` (gated like spans).
pub fn record_sample(name: &'static str, elapsed: Duration) {
    if !enabled() {
        return;
    }
    let mut spans = SPANS.lock().unwrap_or_else(PoisonError::into_inner);
    spans
        .entry(name)
        .or_default()
        .merge_sample(elapsed.as_nanos());
}

/// Adds `n` to the named counter (gated like spans).
pub fn add_count(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    let mut counters = COUNTERS.lock().unwrap_or_else(PoisonError::into_inner);
    *counters.entry(name).or_insert(0) += n;
}

/// Returns and clears all aggregated spans.
pub fn drain_spans() -> Vec<(&'static str, SpanStats)> {
    let mut spans = SPANS.lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *spans).into_iter().collect()
}

/// Returns and clears all counters.
pub fn drain_counters() -> Vec<(&'static str, u64)> {
    let mut counters = COUNTERS.lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *counters).into_iter().collect()
}

/// Clears all recorded spans and counters without returning them.
pub fn reset() {
    drop(drain_spans());
    drop(drain_counters());
}

/// Serializes one span as a JSONL record.
pub fn span_record(name: &str, stats: &SpanStats) -> JsonObject {
    let mut obj = JsonObject::with_type("span");
    obj.field_str("name", name);
    obj.field_u64("count", stats.count);
    obj.field_f64("total_ms", stats.total_ns as f64 / 1e6);
    obj.field_f64("mean_us", stats.mean_ns() / 1e3);
    obj.field_f64("min_us", stats.min_ns as f64 / 1e3);
    obj.field_f64("max_us", stats.max_ns as f64 / 1e3);
    obj
}

/// Serializes one counter as a JSONL record.
pub fn counter_record(name: &str, value: u64) -> JsonObject {
    let mut obj = JsonObject::with_type("counter");
    obj.field_str("name", name);
    obj.field_u64("value", value);
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, MutexGuard, OnceLock};

    /// The registries are global, so tests touching them serialize here.
    fn registry_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<TestMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = registry_lock();
        set_enabled(false);
        reset();
        {
            let _span = span("test.disabled");
        }
        add_count("test.disabled.counter", 5);
        assert!(drain_spans().is_empty());
        assert!(drain_counters().is_empty());
    }

    #[test]
    fn enabled_spans_aggregate() {
        let _guard = registry_lock();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _span = span("test.enabled");
        }
        record_sample("test.enabled", Duration::from_micros(50));
        let spans = drain_spans();
        set_enabled(false);
        let (name, stats) = spans
            .iter()
            .find(|(n, _)| *n == "test.enabled")
            .expect("span recorded");
        assert_eq!(*name, "test.enabled");
        assert_eq!(stats.count, 4);
        assert!(stats.total_ns >= 50_000);
        assert!(stats.min_ns <= stats.max_ns);
        assert!(stats.mean_ns() > 0.0);
    }

    #[test]
    fn cancel_suppresses_recording() {
        let _guard = registry_lock();
        set_enabled(true);
        reset();
        span("test.cancelled").cancel();
        let spans = drain_spans();
        set_enabled(false);
        assert!(spans.iter().all(|(n, _)| *n != "test.cancelled"));
    }

    #[test]
    fn stopwatch_accumulates_into_one_sample() {
        let _guard = registry_lock();
        set_enabled(true);
        reset();
        let mut watch = Stopwatch::new();
        for _ in 0..5 {
            watch.start();
            std::hint::black_box(0u64);
            watch.stop();
        }
        // An open interval at record time is closed, not lost.
        watch.start();
        watch.record("test.stopwatch");
        let spans = drain_spans();
        set_enabled(false);
        let (_, stats) = spans
            .iter()
            .find(|(n, _)| *n == "test.stopwatch")
            .expect("stopwatch recorded");
        assert_eq!(stats.count, 1, "many intervals, one sample");
    }

    #[test]
    fn disarmed_stopwatch_records_nothing() {
        let _guard = registry_lock();
        set_enabled(false);
        reset();
        let mut watch = Stopwatch::new();
        watch.start();
        watch.stop();
        watch.record("test.stopwatch.disarmed");
        // Arming afterwards must not resurrect it.
        set_enabled(true);
        let spans = drain_spans();
        set_enabled(false);
        assert!(spans.iter().all(|(n, _)| *n != "test.stopwatch.disarmed"));
    }

    #[test]
    fn counters_accumulate() {
        let _guard = registry_lock();
        set_enabled(true);
        reset();
        add_count("test.counter", 2);
        add_count("test.counter", 3);
        let counters = drain_counters();
        set_enabled(false);
        assert!(counters.contains(&("test.counter", 5)));
    }

    #[test]
    fn record_shapes() {
        let stats = SpanStats {
            count: 2,
            total_ns: 3_000_000,
            min_ns: 1_000_000,
            max_ns: 2_000_000,
        };
        let line = span_record("lp.solve", &stats).finish();
        assert!(line.contains("\"type\":\"span\""));
        assert!(line.contains("\"name\":\"lp.solve\""));
        assert!(line.contains("\"total_ms\":3"));
        let line = counter_record("sim.slots", 7).finish();
        assert!(line.contains("\"type\":\"counter\""));
        assert!(line.contains("\"value\":7"));
    }
}
