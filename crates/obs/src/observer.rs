//! The observer trait the simulation engine reports into.

/// Everything that happened in one completed slot, flattened into scalars so
//  the engine can pass it by value without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOutcome {
    /// Global slot index `t` (1-based).
    pub slot: u64,
    /// The deciding sensor for rotating coordination; for independent
    /// coordination, the lowest-indexed sensor that activated (or 0).
    pub owner: usize,
    /// The information-state index the owner decided from (0 when down).
    pub state: usize,
    /// Whether any sensor's policy voted to activate.
    pub wanted: bool,
    /// Whether any sensor actually activated.
    pub active: bool,
    /// Whether an event occurred in this slot.
    pub event: bool,
    /// Whether the event was captured (by any sensor).
    pub captured: bool,
    /// Whether this slot counts toward QoM (i.e. is past warm-up).
    pub measured: bool,
}

/// Slot-level hooks invoked by the simulation engine.
///
/// Every hook has a no-op default, so an observer implements only what it
/// needs; [`NullObserver`] overrides nothing and compiles away entirely when
/// the engine is monomorphized over it.
///
/// Hook order within one slot mirrors the engine's phase order:
/// `on_recharge_overflow*` → (`on_outage` | `on_forced_idle`)* →
/// (`on_capture` | `on_miss`)? → `on_battery_levels`? → `on_slot`.
pub trait Observer {
    /// Called once per completed slot with the flattened outcome.
    #[inline]
    fn on_slot(&mut self, outcome: &SlotOutcome) {
        let _ = outcome;
    }

    /// An event was captured; `gap` is the number of slots since the
    /// previous fleet-wide capture (or since the anchor event at slot 0).
    #[inline]
    fn on_capture(&mut self, slot: u64, sensor: usize, gap: u64) {
        let _ = (slot, sensor, gap);
    }

    /// An event occurred and no sensor captured it.
    #[inline]
    fn on_miss(&mut self, slot: u64) {
        let _ = slot;
    }

    /// A sensor's policy voted to activate but its battery was below the
    /// activation threshold; `battery_fraction` is its fill level in `[0, 1]`.
    #[inline]
    fn on_forced_idle(&mut self, slot: u64, sensor: usize, battery_fraction: f64) {
        let _ = (slot, sensor, battery_fraction);
    }

    /// A sensor was offline due to an injected outage.
    #[inline]
    fn on_outage(&mut self, slot: u64, sensor: usize) {
        let _ = (slot, sensor);
    }

    /// Recharge energy bounced off a full battery; `lost_units` is the
    /// overflow in energy units.
    #[inline]
    fn on_recharge_overflow(&mut self, slot: u64, sensor: usize, lost_units: f64) {
        let _ = (slot, sensor, lost_units);
    }

    /// Whether the engine should assemble per-sensor battery fill fractions
    /// and call [`on_battery_levels`](Observer::on_battery_levels). Battery
    /// snapshots are the one hook whose argument costs something to build,
    /// so it is opt-in; everything else is always delivered.
    #[inline]
    fn wants_battery_levels(&self) -> bool {
        false
    }

    /// Per-sensor battery fill fractions (in `[0, 1]`) at the end of a slot.
    /// Only called when [`wants_battery_levels`](Observer::wants_battery_levels)
    /// returns `true`.
    #[inline]
    fn on_battery_levels(&mut self, slot: u64, fractions: &[f64]) {
        let _ = (slot, fractions);
    }
}

/// The default observer: observes nothing, costs nothing.
///
/// The engine is generic over its observer, so runs through `NullObserver`
/// monomorphize every hook to an empty inline body — the instrumented loop
/// is the uninstrumented loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {}

impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn on_slot(&mut self, outcome: &SlotOutcome) {
        (**self).on_slot(outcome);
    }
    #[inline]
    fn on_capture(&mut self, slot: u64, sensor: usize, gap: u64) {
        (**self).on_capture(slot, sensor, gap);
    }
    #[inline]
    fn on_miss(&mut self, slot: u64) {
        (**self).on_miss(slot);
    }
    #[inline]
    fn on_forced_idle(&mut self, slot: u64, sensor: usize, battery_fraction: f64) {
        (**self).on_forced_idle(slot, sensor, battery_fraction);
    }
    #[inline]
    fn on_outage(&mut self, slot: u64, sensor: usize) {
        (**self).on_outage(slot, sensor);
    }
    #[inline]
    fn on_recharge_overflow(&mut self, slot: u64, sensor: usize, lost_units: f64) {
        (**self).on_recharge_overflow(slot, sensor, lost_units);
    }
    #[inline]
    fn wants_battery_levels(&self) -> bool {
        (**self).wants_battery_levels()
    }
    #[inline]
    fn on_battery_levels(&mut self, slot: u64, fractions: &[f64]) {
        (**self).on_battery_levels(slot, fractions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        slots: u64,
        captures: u64,
        misses: u64,
    }

    impl Observer for Counting {
        fn on_slot(&mut self, _outcome: &SlotOutcome) {
            self.slots += 1;
        }
        fn on_capture(&mut self, _slot: u64, _sensor: usize, _gap: u64) {
            self.captures += 1;
        }
        fn on_miss(&mut self, _slot: u64) {
            self.misses += 1;
        }
        fn wants_battery_levels(&self) -> bool {
            true
        }
    }

    #[test]
    fn default_hooks_are_no_ops() {
        let mut null = NullObserver;
        null.on_slot(&SlotOutcome {
            slot: 1,
            owner: 0,
            state: 1,
            wanted: true,
            active: true,
            event: false,
            captured: false,
            measured: true,
        });
        null.on_capture(1, 0, 5);
        null.on_miss(2);
        null.on_forced_idle(3, 0, 0.1);
        null.on_outage(4, 1);
        null.on_recharge_overflow(5, 0, 0.5);
        null.on_battery_levels(6, &[0.5]);
        assert!(!null.wants_battery_levels());
    }

    #[test]
    fn mut_ref_forwards() {
        let mut counting = Counting::default();
        {
            let fwd: &mut Counting = &mut counting;
            assert!(fwd.wants_battery_levels());
            fwd.on_capture(1, 0, 1);
            fwd.on_miss(2);
            fwd.on_slot(&SlotOutcome {
                slot: 2,
                owner: 0,
                state: 2,
                wanted: false,
                active: false,
                event: true,
                captured: false,
                measured: true,
            });
        }
        assert_eq!(counting.captures, 1);
        assert_eq!(counting.misses, 1);
        assert_eq!(counting.slots, 1);
    }
}
