//! JSONL emission and parsing (no serde in the offline dependency set).
//!
//! Writing: [`JsonObject`] builds one flat record; [`JsonlSink`] streams
//! records line-by-line to any `Write`. Floats render with enough precision
//! to round-trip; non-finite floats render as `null` (JSON has no NaN/∞).
//!
//! Reading: [`parse_line`] parses one line into a [`JsonValue`] tree — just
//! enough JSON to let `evcap trace` inspect the files this module writes
//! (and any other RFC 8259 document without exotic escapes).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Escapes a string for inclusion in JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number (`null` for NaN/∞).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A single flat JSON object under construction.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            empty: true,
        }
    }

    /// Starts an object whose first field is `"type": <record_type>` — the
    /// discriminator convention every evcap JSONL record follows.
    pub fn with_type(record_type: &str) -> Self {
        let mut obj = Self::new();
        obj.field_str("type", record_type);
        obj
    }

    fn key(&mut self, name: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        let _ = write!(self.buf, "\"{}\":", escape(name));
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a `usize` field.
    pub fn field_usize(&mut self, name: &str, value: usize) -> &mut Self {
        self.field_u64(name, value as u64)
    }

    /// Adds a float field (`null` for non-finite values).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&num(value));
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array-of-integers field.
    pub fn field_u64_array(&mut self, name: &str, values: &[u64]) -> &mut Self {
        self.key(name);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Adds an array-of-floats field.
    pub fn field_f64_array(&mut self, name: &str, values: &[f64]) -> &mut Self {
        self.key(name);
        self.buf.push('[');
        for (i, &v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&num(v));
        }
        self.buf.push(']');
        self
    }

    /// Adds an array field whose items are *pre-rendered* JSON documents
    /// (typically [`finish`](Self::finish)ed sub-objects). The caller is
    /// responsible for each item being valid JSON.
    pub fn field_raw_array<S: AsRef<str>>(&mut self, name: &str, items: &[S]) -> &mut Self {
        self.key(name);
        self.buf.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(item.as_ref());
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the JSON text (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Streams JSONL records to an underlying writer.
pub struct JsonlSink<W: Write = BufWriter<File>> {
    out: W,
    records: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Opens (truncates) a file for JSONL output.
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` failure.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        Self { out, records: 0 }
    }

    /// Writes one record as a line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn write(&mut self, record: JsonObject) -> io::Result<()> {
        self.out.write_all(record.finish().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (field order is not preserved).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value of an object field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one complete JSON document (typically one JSONL line).
///
/// # Errors
///
/// Returns [`JsonParseError`] on malformed input or trailing garbage.
pub fn parse_line(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("invalid number"))
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_produces_valid_json() {
        let mut obj = JsonObject::with_type("demo");
        obj.field_str("name", "a\"b\\c\nd");
        obj.field_u64("count", 42);
        obj.field_f64("ratio", 0.5);
        obj.field_f64("bad", f64::NAN);
        obj.field_bool("ok", true);
        obj.field_u64_array("bins", &[1, 2, 3]);
        obj.field_f64_array("xs", &[0.25, f64::INFINITY]);
        let line = obj.finish();
        let parsed = parse_line(&line).expect("round-trips");
        assert_eq!(parsed.get("type").and_then(JsonValue::as_str), Some("demo"));
        assert_eq!(
            parsed.get("name").and_then(JsonValue::as_str),
            Some("a\"b\\c\nd")
        );
        assert_eq!(parsed.get("count").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(parsed.get("bad"), Some(&JsonValue::Null));
        assert_eq!(parsed.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            parsed
                .get("bins")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(3)
        );
        let xs = parsed
            .get("xs")
            .and_then(JsonValue::as_array)
            .expect("array");
        assert_eq!(xs[1], JsonValue::Null);
    }

    #[test]
    fn raw_array_embeds_sub_objects() {
        let mut inner = JsonObject::new();
        inner.field_u64("n", 7);
        let items = vec![inner.clone().finish(), inner.finish()];
        let mut outer = JsonObject::with_type("recent");
        outer.field_raw_array("requests", &items);
        let parsed = parse_line(&outer.finish()).expect("valid");
        let reqs = parsed
            .get("requests")
            .and_then(JsonValue::as_array)
            .expect("array");
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].get("n").and_then(JsonValue::as_f64), Some(7.0));
    }

    #[test]
    fn sink_writes_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        let mut a = JsonObject::with_type("a");
        a.field_u64("n", 1);
        sink.write(a).unwrap();
        sink.write(JsonObject::with_type("b")).unwrap();
        assert_eq!(sink.records(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse_line(line).expect("each line parses");
        }
    }

    #[test]
    fn parser_handles_nesting_and_unicode() {
        let v = parse_line(r#"{"a":[1,2,{"b":"héllo ☃"}],"c":null,"d":-1.5e3}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        let inner = v.get("a").unwrap().as_array().unwrap()[2]
            .get("b")
            .and_then(JsonValue::as_str);
        assert_eq!(inner, Some("héllo ☃"));
        assert_eq!(v.get("d").and_then(JsonValue::as_f64), Some(-1500.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{").is_err());
        assert!(parse_line("{\"a\":1} extra").is_err());
        assert!(parse_line("{\"a\":}").is_err());
        assert!(parse_line("[1,]").is_err());
        assert!(parse_line("\"unterminated").is_err());
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        let mut obj = JsonObject::new();
        obj.field_str("s", "\u{1}\t\u{1f}");
        let line = obj.finish();
        assert!(line.contains("\\u0001"));
        assert!(line.contains("\\u001f"));
        let parsed = parse_line(&line).unwrap();
        assert_eq!(
            parsed.get("s").and_then(JsonValue::as_str),
            Some("\u{1}\t\u{1f}")
        );
    }
}
