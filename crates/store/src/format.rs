//! The record wire format: a compact, versioned, checksummed binary
//! serialization of `(Scenario, PolicyParams, iterations)`.
//!
//! ```text
//! file   := MAGIC "EVST" | VERSION u32 | record*
//! record := len u32 | crc32(payload) u32 | payload[len]
//! payload:= [0xFF objective u8] scenario | iterations u64 | params
//! ```
//!
//! All integers are little-endian; floats are stored as their raw IEEE-754
//! bits so a decode is bit-identical to what was encoded. Strings carry a
//! `u32` length prefix. Greedy coefficient vectors are run-length encoded
//! (water-filling produces long runs of equal coefficients); myopic
//! activation windows are stored as a bitset.
//!
//! **Version 2** adds the optional objective prefix: a scenario solved for
//! a non-default [`Objective`] opens with the marker byte `0xFF` (never a
//! valid policy tag) followed by the objective's stable index. A scenario
//! solved for QoM encodes *byte-identically* to version 1, so every record
//! written by a v1 build decodes here (objective = QoM) and every QoM
//! record written here is readable as a v1 payload.

use evcap_core::Objective;
use evcap_spec::{PolicyParams, PolicySpec, Scenario};

/// File magic: the first four bytes of every store file.
pub const MAGIC: [u8; 4] = *b"EVST";

/// Current format version; bumped on any incompatible layout change.
/// Version 1 files remain readable (see [`MIN_VERSION`]).
pub const VERSION: u32 = 2;

/// Oldest format version this build still decodes.
pub const MIN_VERSION: u32 = 1;

/// Marker byte opening the payload of a record whose scenario carries a
/// non-default objective. Sits far above every policy tag so a sniff of
/// the first byte distinguishes the layouts unambiguously.
const OBJECTIVE_MARKER: u8 = 0xFF;

/// Upper bound on decoded vector lengths (coefficients, activation bits):
/// far above any real discretization horizon, low enough that a corrupted
/// length field cannot drive a huge allocation.
const MAX_VEC_LEN: usize = 1 << 22;

/// A structural decode failure: what went wrong and where in the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// Byte offset inside the payload where decoding failed.
    pub pos: usize,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload byte {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for FormatError {}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small table built on demand; the polynomial is the standard
    // reflected 0xEDB88320.
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Policy-family tags shared by the scenario and params sections.
fn policy_tag(policy: PolicySpec) -> u8 {
    match policy {
        PolicySpec::Greedy => 0,
        PolicySpec::Clustering => 1,
        PolicySpec::Aggressive => 2,
        PolicySpec::Periodic { .. } => 3,
        PolicySpec::Myopic => 4,
    }
}

/// Encodes one record payload (everything between the checksum and the
/// next record header).
pub fn encode(scenario: &Scenario, params: &PolicyParams, iterations: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    // Scenario prefix — decodable on its own so a scan can still index a
    // record whose later bytes are damaged. The default objective (QoM) is
    // elided so those records stay byte-identical to format version 1.
    if !scenario.objective().is_default() {
        put_u8(&mut buf, OBJECTIVE_MARKER);
        put_u8(&mut buf, scenario.objective().index() as u8);
    }
    put_u8(&mut buf, policy_tag(scenario.policy()));
    if let PolicySpec::Periodic { theta1 } = scenario.policy() {
        put_u64(&mut buf, theta1);
    }
    put_str(&mut buf, scenario.dist());
    put_str(&mut buf, scenario.recharge());
    put_f64(&mut buf, scenario.e());
    put_f64(&mut buf, scenario.delta1());
    put_f64(&mut buf, scenario.delta2());
    put_f64(&mut buf, scenario.battery());
    put_u64(&mut buf, scenario.horizon() as u64);
    put_u64(&mut buf, scenario.sensors() as u64);

    put_u64(&mut buf, iterations);

    match params {
        PolicyParams::Greedy {
            coefficients,
            tail_coefficient,
            ideal_qom,
            discharge_rate,
        } => {
            put_u8(&mut buf, 0);
            // Run-length encode equal-bits runs of coefficients.
            let mut runs: Vec<(u32, u64)> = Vec::new();
            for &c in coefficients {
                let bits = c.to_bits();
                match runs.last_mut() {
                    Some((n, b)) if *b == bits && *n < u32::MAX => *n += 1,
                    _ => runs.push((1, bits)),
                }
            }
            put_u32(&mut buf, runs.len() as u32);
            for (n, bits) in runs {
                put_u32(&mut buf, n);
                put_u64(&mut buf, bits);
            }
            put_f64(&mut buf, *tail_coefficient);
            put_f64(&mut buf, *ideal_qom);
            put_f64(&mut buf, *discharge_rate);
        }
        PolicyParams::Clustering {
            n1,
            n2,
            n3,
            boundary,
        } => {
            put_u8(&mut buf, 1);
            put_u64(&mut buf, *n1 as u64);
            put_u64(&mut buf, *n2 as u64);
            put_u64(&mut buf, *n3 as u64);
            put_f64(&mut buf, boundary.0);
            put_f64(&mut buf, boundary.1);
            put_f64(&mut buf, boundary.2);
        }
        PolicyParams::Aggressive => put_u8(&mut buf, 2),
        PolicyParams::Periodic { theta1, theta2 } => {
            put_u8(&mut buf, 3);
            put_u64(&mut buf, *theta1);
            put_u64(&mut buf, *theta2);
        }
        PolicyParams::Myopic {
            active,
            threshold,
            evaluation,
        } => {
            put_u8(&mut buf, 4);
            put_u32(&mut buf, active.len() as u32);
            let mut bits = vec![0u8; active.len().div_ceil(8)];
            for (i, &a) in active.iter().enumerate() {
                if a {
                    bits[i / 8] |= 1 << (i % 8); // deepcheck:allow(panic-path): i < active.len() and bits holds div_ceil(len, 8) bytes
                }
            }
            buf.extend_from_slice(&bits);
            put_f64(&mut buf, *threshold);
            put_f64(&mut buf, evaluation.capture_probability);
            put_f64(&mut buf, evaluation.discharge_rate);
            put_f64(&mut buf, evaluation.expected_cycle);
            put_f64(&mut buf, evaluation.truncated_survival);
        }
    }
    buf
}

/// A bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn err(&self, detail: impl Into<String>) -> FormatError {
        FormatError {
            pos: self.pos,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.err(format!("truncated: wanted {n} more bytes")))?;
        let out = &self.buf[self.pos..end]; // deepcheck:allow(panic-path): `end` is checked against buf.len() just above
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }

    /// Takes exactly `N` bytes as a fixed array (element-wise copy, so a
    /// short read surfaces as `take`'s truncation error, never a panic).
    fn array<const N: usize>(&mut self) -> Result<[u8; N], FormatError> {
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(self.take(N)?) {
            *dst = *src;
        }
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, FormatError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize64(&mut self, what: &str) -> Result<usize, FormatError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("{what} {v} overflows usize")))
    }

    fn str(&mut self) -> Result<String, FormatError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.err(format!("invalid utf-8: {e}")))
    }
}

/// Decodes the scenario prefix of a payload (enough to recover the record's
/// canonical key even when later bytes are damaged). Returns the scenario
/// and the reader positioned at the `iterations` field.
fn decode_scenario_inner(payload: &[u8]) -> Result<(Scenario, Reader<'_>), FormatError> {
    let mut r = Reader::new(payload);
    let mut objective = Objective::Qom;
    let mut tag = r.u8()?;
    if tag == OBJECTIVE_MARKER {
        let idx = r.u8()?;
        // Index 0 (QoM) is rejected: the encoder always elides the default
        // objective, so accepting it would give one scenario two spellings.
        objective = Objective::from_index(idx as usize)
            .filter(|o| !o.is_default())
            .ok_or_else(|| r.err(format!("unknown objective tag {idx}")))?;
        tag = r.u8()?;
    }
    let policy = match tag {
        0 => PolicySpec::Greedy,
        1 => PolicySpec::Clustering,
        2 => PolicySpec::Aggressive,
        3 => PolicySpec::Periodic { theta1: r.u64()? },
        4 => PolicySpec::Myopic,
        other => return Err(r.err(format!("unknown policy tag {other}"))),
    };
    let dist = r.str()?;
    let recharge = r.str()?;
    let e = r.f64()?;
    let delta1 = r.f64()?;
    let delta2 = r.f64()?;
    let battery = r.f64()?;
    let horizon = r.usize64("horizon")?;
    let sensors = r.usize64("sensors")?;
    if !e.is_finite() {
        return Err(r.err(format!("non-finite recharge rate {e}")));
    }
    let scenario = Scenario::new(&dist, policy, e)
        .map_err(|err| r.err(format!("stored dist spec no longer parses: {err}")))?
        .with_recharge(&recharge)
        .map_err(|err| r.err(format!("stored recharge spec no longer parses: {err}")))?
        .with_costs(delta1, delta2)
        .with_battery(battery)
        .with_horizon(horizon)
        .with_sensors(sensors)
        .with_objective(objective);
    Ok((scenario, r))
}

/// Decodes just the scenario prefix (used by the open-time index scan).
pub fn decode_scenario(payload: &[u8]) -> Result<Scenario, FormatError> {
    decode_scenario_inner(payload).map(|(s, _)| s)
}

/// Decodes a full record payload.
pub fn decode(payload: &[u8]) -> Result<(Scenario, PolicyParams, u64), FormatError> {
    let (scenario, mut r) = decode_scenario_inner(payload)?;
    let iterations = r.u64()?;
    let tag = r.u8()?;
    if tag != policy_tag(scenario.policy()) {
        return Err(r.err(format!(
            "params tag {tag} does not match the scenario's policy `{}`",
            scenario.policy().name()
        )));
    }
    let params = match tag {
        0 => {
            let runs = r.u32()? as usize;
            let mut coefficients = Vec::new();
            for _ in 0..runs {
                let n = r.u32()? as usize;
                let bits = r.u64()?;
                if coefficients.len() + n > MAX_VEC_LEN {
                    return Err(r.err(format!(
                        "coefficient run-length encoding expands past {MAX_VEC_LEN} entries"
                    )));
                }
                coefficients.resize(coefficients.len() + n, f64::from_bits(bits));
            }
            PolicyParams::Greedy {
                coefficients,
                tail_coefficient: r.f64()?,
                ideal_qom: r.f64()?,
                discharge_rate: r.f64()?,
            }
        }
        1 => PolicyParams::Clustering {
            n1: r.usize64("n1")?,
            n2: r.usize64("n2")?,
            n3: r.usize64("n3")?,
            boundary: (r.f64()?, r.f64()?, r.f64()?),
        },
        2 => PolicyParams::Aggressive,
        3 => PolicyParams::Periodic {
            theta1: r.u64()?,
            theta2: r.u64()?,
        },
        4 => {
            let len = r.u32()? as usize;
            if len > MAX_VEC_LEN {
                return Err(r.err(format!("activation window {len} exceeds {MAX_VEC_LEN}")));
            }
            let bytes = r.take(len.div_ceil(8))?;
            let active = (0..len)
                // deepcheck:allow(panic-path): i < len and `bytes` holds div_ceil(len, 8) bytes
                .map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1)
                .collect();
            PolicyParams::Myopic {
                active,
                threshold: r.f64()?,
                evaluation: evcap_core::ClusterEvaluation {
                    capture_probability: r.f64()?,
                    discharge_rate: r.f64()?,
                    expected_cycle: r.f64()?,
                    truncated_survival: r.f64()?,
                },
            }
        }
        // The tag was validated against the scenario's policy above; an
        // unknown value here means that validation drifted — fail the
        // decode instead of panicking.
        other => return Err(r.err(format!("unhandled params tag {other}"))),
    };
    if r.pos != payload.len() {
        return Err(r.err(format!(
            "{} trailing bytes after a well-formed record",
            payload.len() - r.pos
        )));
    }
    Ok((scenario, params, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn qom_records_spell_the_version_1_layout_byte_for_byte() {
        let scenario = Scenario::new("weibull:40,3", PolicySpec::Aggressive, 0.5).unwrap();
        let explicit = scenario.clone().with_objective(Objective::Qom);
        let payload = encode(&scenario, &PolicyParams::Aggressive, 0);
        assert_eq!(payload, encode(&explicit, &PolicyParams::Aggressive, 0));
        // No marker: the first byte is the policy tag, as in version 1.
        assert_eq!(payload[0], policy_tag(PolicySpec::Aggressive));
    }

    #[test]
    fn age_objectives_round_trip_through_the_marker_prefix() {
        for objective in [Objective::AoiMean, Objective::AoiPeak] {
            let scenario = Scenario::new("weibull:40,3", PolicySpec::Aggressive, 0.5)
                .unwrap()
                .with_objective(objective);
            let payload = encode(&scenario, &PolicyParams::Aggressive, 3);
            assert_eq!(payload[0], OBJECTIVE_MARKER);
            assert_eq!(payload[1] as usize, objective.index());
            let (decoded, params, iterations) = decode(&payload).unwrap();
            assert_eq!(decoded, scenario);
            assert_eq!(params, PolicyParams::Aggressive);
            assert_eq!(iterations, 3);
        }
    }

    #[test]
    fn non_canonical_or_unknown_objective_tags_are_rejected() {
        let scenario = Scenario::new("weibull:40,3", PolicySpec::Aggressive, 0.5)
            .unwrap()
            .with_objective(Objective::AoiMean);
        let payload = encode(&scenario, &PolicyParams::Aggressive, 0);
        for bad in [0u8, 3, 77] {
            let mut tampered = payload.clone();
            tampered[1] = bad;
            let e = decode(&tampered).unwrap_err();
            assert!(e.detail.contains("objective"), "tag {bad}: {e}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let scenario = Scenario::new("weibull:40,3", PolicySpec::Aggressive, 0.5).unwrap();
        let mut payload = encode(&scenario, &PolicyParams::Aggressive, 0);
        decode(&payload).unwrap();
        payload.push(0);
        assert!(decode(&payload).is_err());
    }

    #[test]
    fn scenario_prefix_survives_damaged_params() {
        let scenario = Scenario::new("weibull:40,3", PolicySpec::Periodic { theta1: 3 }, 0.5)
            .unwrap()
            .with_costs(1.0, 8.0)
            .with_sensors(4);
        let params = PolicyParams::Periodic {
            theta1: 3,
            theta2: 40,
        };
        let mut payload = encode(&scenario, &params, 7);
        let n = payload.len();
        payload[n - 1] ^= 0xFF; // damage the params section
        let recovered = decode_scenario(&payload).unwrap();
        assert_eq!(recovered.canonical_key(), scenario.canonical_key());
    }
}
