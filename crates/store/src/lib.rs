//! `evcap-store`: a persistent, append-only artifact store for solved
//! activation policies.
//!
//! The serve tier and the fleet solver both pay a full optimizer run per
//! scenario miss; this crate makes those solves durable. A store is one
//! flat file of checksummed, length-prefixed records — each a compact
//! binary serialization of `(Scenario, PolicyParams, iterations)`, the
//! exact inputs [`evcap_spec::rehydrate`] needs to reassemble a
//! [`SolvedPolicy`] bit-for-bit without re-running any optimizer — plus an
//! in-memory index keyed by [`Scenario::canonical_key`] that is rebuilt by
//! scanning the file at open.
//!
//! Design points:
//!
//! * **Crash-safe appends**: a record becomes visible only once fully
//!   written; a torn tail (partial record from a crash mid-append) is
//!   detected at open, tolerated, and overwritten by the next append.
//! * **Corruption is contained**: every record carries a CRC-32; a record
//!   whose scenario prefix still decodes is indexed even when its checksum
//!   fails, so a caller observes a structured *rejection* for that key
//!   (and can fall back to a fresh solve) rather than a silent miss.
//! * **No panics on hostile bytes**: every decode failure is a
//!   [`StoreError`]; allocation sizes are bounds-checked against the
//!   record length.
//! * **Warm starts**: [`Store::warm_hint`] finds the stored clustering
//!   artifact nearest a scenario (same distribution, closest recharge
//!   rate `e`) to seed the optimizer's enumeration.
//!
//! Loading always re-verifies the checksum and re-derives the policy via
//! [`evcap_spec::rehydrate`]; this crate never constructs a policy itself.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use evcap_spec::{PolicyParams, PolicySpec, Scenario, SolvedPolicy};

pub mod format;

use format::{crc32, FormatError, MAGIC, MIN_VERSION, VERSION};

/// File name of the record log inside a store directory.
pub const STORE_FILE: &str = "artifacts.evst";

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the `EVST` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is newer than this build writes (or
    /// older than it still decodes).
    WrongVersion {
        /// The version actually found.
        found: u32,
        /// The newest version this build understands.
        expected: u32,
    },
    /// A record failed its checksum or structural decode.
    Corrupt {
        /// Byte offset of the record header inside the store file.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// No record is indexed under the requested key.
    NotFound {
        /// The canonical scenario key that missed.
        key: String,
    },
    /// The record decoded but [`evcap_spec::rehydrate`] refused to turn it
    /// back into a policy (stale parameters, family mismatch, …).
    Rejected {
        /// The canonical scenario key of the record.
        key: String,
        /// The rehydration failure.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store i/o error: {e}"),
            Self::BadMagic { found } => {
                write!(
                    f,
                    "not an evcap store (magic {found:02x?}, wanted \"EVST\")"
                )
            }
            Self::WrongVersion { found, expected } => {
                write!(
                    f,
                    "store format version {found} (this build reads up to {expected})"
                )
            }
            Self::Corrupt { offset, detail } => {
                write!(f, "corrupt record at byte {offset}: {detail}")
            }
            Self::NotFound { key } => write!(f, "no stored artifact for `{key}`"),
            Self::Rejected { key, detail } => {
                write!(f, "stored artifact for `{key}` rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One indexed record: where it lives in the file.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Byte offset of the record header (`len | crc`).
    offset: u64,
    /// Payload length in bytes.
    len: u32,
}

/// Outcome of a full-file [`Store::verify`] scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Well-formed records whose checksum and structural decode both pass.
    pub valid: usize,
    /// Records that failed the checksum or the decode, with details.
    pub corrupt: Vec<(u64, String)>,
    /// Bytes of unparseable tail data (torn final append), if any.
    pub torn_tail_bytes: u64,
}

impl VerifyReport {
    /// True when every byte of the store is accounted for by valid records.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.torn_tail_bytes == 0
    }
}

/// Outcome of a [`Store::compact`] rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Records carried into the compacted file (one per surviving key).
    pub kept: usize,
    /// Records dropped (superseded duplicates, corrupt, torn tail).
    pub dropped: usize,
    /// File size before compaction.
    pub bytes_before: u64,
    /// File size after compaction.
    pub bytes_after: u64,
}

/// An append-only artifact store rooted at a directory.
///
/// See the crate docs for the format and the durability model. All methods
/// take `&mut self` because they share one seekable file handle; wrap the
/// store in a mutex to share it across threads.
pub struct Store {
    dir: PathBuf,
    file: File,
    index: HashMap<String, IndexEntry>,
    /// End of the last well-formed record: where the next append goes.
    tail: u64,
    /// Records skipped at open because even their scenario prefix was
    /// undecodable.
    unindexed: usize,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("entries", &self.index.len())
            .field("bytes", &self.tail)
            .finish()
    }
}

impl Store {
    /// Opens (creating if necessary) the store rooted at `dir`, scanning
    /// the record log to rebuild the in-memory index.
    ///
    /// A torn tail — a partial record from a crash mid-append — is
    /// tolerated and will be overwritten by the next append. A record
    /// whose checksum fails but whose scenario prefix still decodes is
    /// indexed anyway, so loads of that key report the corruption instead
    /// of a silent miss.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::BadMagic`]
    /// / [`StoreError::WrongVersion`] if the file is not a store this
    /// build can read.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(STORE_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let file_len = file.metadata()?.len();

        if file_len == 0 {
            file.write_all(&MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            return Ok(Self {
                dir: dir.to_path_buf(),
                file,
                index: HashMap::new(),
                tail: 8,
                unindexed: 0,
            });
        }

        let mut header = [0u8; 8];
        if file_len < 8 {
            return Err(StoreError::Corrupt {
                offset: 0,
                detail: format!("file is {file_len} bytes, smaller than the header"),
            });
        }
        file.read_exact(&mut header)?;
        let found: [u8; 4] = header[..4].try_into().expect("four header bytes");
        if found != MAGIC {
            return Err(StoreError::BadMagic { found });
        }
        let version = u32::from_le_bytes(header[4..].try_into().expect("four version bytes"));
        // v1 is decodable as-is (a v2 payload without the objective prefix
        // is exactly a v1 payload), so both generations open here.
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(StoreError::WrongVersion {
                found: version,
                expected: VERSION,
            });
        }

        let mut store = Self {
            dir: dir.to_path_buf(),
            file,
            index: HashMap::new(),
            tail: 8,
            unindexed: 0,
        };
        store.rescan(file_len)?;
        Ok(store)
    }

    /// Rebuilds the index by scanning records in `[8, file_len)`.
    fn rescan(&mut self, file_len: u64) -> Result<(), StoreError> {
        self.index.clear();
        self.unindexed = 0;
        let mut pos = 8u64;
        self.file.seek(SeekFrom::Start(pos))?;
        while pos + 8 <= file_len {
            let mut header = [0u8; 8];
            self.file.read_exact(&mut header)?;
            let len = u32::from_le_bytes(header[..4].try_into().expect("len bytes"));
            let end = pos + 8 + u64::from(len);
            if end > file_len {
                break; // torn tail: the append never finished
            }
            let mut payload = vec![0u8; len as usize];
            self.file.read_exact(&mut payload)?;
            // Index by the scenario prefix even when the checksum fails,
            // so the corruption surfaces as a rejection on load.
            match format::decode_scenario(&payload) {
                Ok(scenario) => {
                    self.index
                        .insert(scenario.canonical_key(), IndexEntry { offset: pos, len });
                }
                Err(_) => self.unindexed += 1,
            }
            pos = end;
            self.tail = pos;
        }
        self.tail = self.tail.max(8);
        Ok(())
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of distinct scenario keys indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Logical size of the record log in bytes (header + records; excludes
    /// any torn tail).
    pub fn bytes(&self) -> u64 {
        self.tail
    }

    /// Records skipped at open because their scenario prefix was
    /// undecodable (they hold dead bytes until [`Store::compact`]).
    pub fn unindexed(&self) -> usize {
        self.unindexed
    }

    /// Whether `key` has an indexed record (which may still fail its
    /// checksum on load).
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// The indexed canonical keys, in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// Appends one solved artifact, making it durable before returning.
    ///
    /// Runs under the `store.append` timing span.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write or sync fails.
    pub fn append(&mut self, solved: &SolvedPolicy) -> Result<(), StoreError> {
        let _span = evcap_obs::timing::span("store.append");
        let payload = format::encode(&solved.scenario, &solved.params, solved.meta.iterations);
        let len = u32::try_from(payload.len()).map_err(|_| StoreError::Corrupt {
            offset: self.tail,
            detail: format!("record payload of {} bytes exceeds u32", payload.len()),
        })?;
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);

        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        let offset = self.tail;
        self.tail += record.len() as u64;
        self.index
            .insert(solved.scenario.canonical_key(), IndexEntry { offset, len });
        evcap_obs::timing::add_count("store.appended_bytes", record.len() as u64);
        Ok(())
    }

    /// Reads and fully decodes the record for `key` without rehydrating
    /// it: the stored scenario, family parameters, and solve iterations.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for unindexed keys; [`StoreError::Corrupt`]
    /// when the checksum, the structural decode, or the key cross-check
    /// fails; [`StoreError::Io`] on read failures.
    pub fn load_record(&mut self, key: &str) -> Result<(Scenario, PolicyParams, u64), StoreError> {
        let entry = *self.index.get(key).ok_or_else(|| StoreError::NotFound {
            key: key.to_owned(),
        })?;
        let corrupt = |detail: String| StoreError::Corrupt {
            offset: entry.offset,
            detail,
        };
        self.file.seek(SeekFrom::Start(entry.offset))?;
        let mut header = [0u8; 8];
        self.file.read_exact(&mut header)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len != entry.len {
            return Err(corrupt(format!(
                "indexed length {} disagrees with on-disk length {len}",
                entry.len
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload)?;
        let actual = crc32(&payload);
        if actual != crc {
            return Err(corrupt(format!(
                "checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"
            )));
        }
        let (scenario, params, iterations) =
            format::decode(&payload).map_err(|e: FormatError| corrupt(e.to_string()))?;
        if scenario.canonical_key() != key {
            return Err(corrupt(format!(
                "record is keyed `{}` but was indexed under `{key}`",
                scenario.canonical_key()
            )));
        }
        Ok((scenario, params, iterations))
    }

    /// Loads and rehydrates the artifact stored under `key`.
    ///
    /// The checksum is re-verified and the policy is rebuilt through
    /// [`evcap_spec::rehydrate`], so the result is bit-identical to the
    /// solve that produced the record. Runs under the `store.load` timing
    /// span. **This does not certify the artifact** — callers that serve
    /// the result must still pass it through `evcap_audit`.
    ///
    /// # Errors
    ///
    /// Everything [`Store::load_record`] reports, plus
    /// [`StoreError::Rejected`] when rehydration refuses the parameters.
    pub fn load(&mut self, key: &str) -> Result<SolvedPolicy, StoreError> {
        let _span = evcap_obs::timing::span("store.load");
        let (scenario, params, iterations) = self.load_record(key)?;
        evcap_spec::rehydrate(&scenario, &params, iterations).map_err(|e| StoreError::Rejected {
            key: key.to_owned(),
            detail: e.to_string(),
        })
    }

    /// Finds the stored clustering optimum nearest to `scenario` — same
    /// canonical distribution, costs, battery, horizon, and sensor count,
    /// closest recharge rate `e` — to seed the clustering enumeration
    /// (see `evcap_spec::solve_with_hint`).
    ///
    /// Returns `None` for non-clustering scenarios, when no neighbor
    /// matches, or when the nearest record cannot be decoded.
    pub fn warm_hint(&mut self, scenario: &Scenario) -> Option<(usize, usize, usize)> {
        if scenario.policy() != PolicySpec::Clustering {
            return None;
        }
        let target = scenario.canonical_key();
        let target_fields: Vec<&str> = target.split('|').collect();
        let target_e = scenario.e();
        let mut nearest: Option<(String, f64)> = None;
        for key in self.index.keys() {
            let fields: Vec<&str> = key.split('|').collect();
            if fields.len() != target_fields.len() {
                continue;
            }
            // All canonical-key fields must match except the recharge spec
            // (index 2, derived from `e`) and `e` itself (index 3).
            let comparable = fields
                .iter()
                .zip(&target_fields)
                .enumerate()
                .all(|(i, (f, t))| i == 2 || i == 3 || f == t);
            if !comparable {
                continue;
            }
            let Some(e) = fields[3]
                .strip_prefix("e=")
                .and_then(|v| v.parse::<f64>().ok())
            else {
                continue;
            };
            let dist = (e - target_e).abs();
            if !dist.is_finite() {
                continue;
            }
            match &nearest {
                Some((_, best)) if *best <= dist => {}
                _ => nearest = Some((key.clone(), dist)),
            }
        }
        let (key, _) = nearest?;
        match self.load_record(&key) {
            Ok((_, PolicyParams::Clustering { n1, n2, n3, .. }, _)) => Some((n1, n2, n3)),
            _ => None,
        }
    }

    /// Scans every record in the file, re-checking checksums and
    /// structural decodes; never fails on corrupt data (that is the
    /// report's job).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only, for filesystem failures.
    pub fn verify(&mut self) -> Result<VerifyReport, StoreError> {
        let file_len = self.file.metadata()?.len();
        let mut report = VerifyReport::default();
        let mut pos = 8u64;
        while pos + 8 <= file_len {
            self.file.seek(SeekFrom::Start(pos))?;
            let mut header = [0u8; 8];
            self.file.read_exact(&mut header)?;
            let len = u32::from_le_bytes(header[..4].try_into().expect("len bytes"));
            let crc = u32::from_le_bytes(header[4..].try_into().expect("crc bytes"));
            let end = pos + 8 + u64::from(len);
            if end > file_len {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            self.file.read_exact(&mut payload)?;
            let actual = crc32(&payload);
            if actual != crc {
                report.corrupt.push((
                    pos,
                    format!("checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"),
                ));
            } else if let Err(e) = format::decode(&payload) {
                report.corrupt.push((pos, e.to_string()));
            } else {
                report.valid += 1;
            }
            pos = end;
        }
        report.torn_tail_bytes = file_len - pos;
        Ok(report)
    }

    /// Rewrites the store keeping only the latest intact record per key,
    /// dropping superseded duplicates, corrupt records, and any torn
    /// tail. The rewrite goes to a temporary file that atomically
    /// replaces the log, so a crash mid-compaction leaves the original
    /// store untouched.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn compact(&mut self) -> Result<CompactStats, StoreError> {
        let bytes_before = self.file.metadata()?.len();
        // Survivors: the indexed offset per key, provided the record is
        // intact end-to-end. Written in file order to keep append history.
        let mut offsets: Vec<(u64, u32)> = Vec::new();
        let live: Vec<(String, IndexEntry)> =
            self.index.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let mut kept = 0usize;
        let mut records: Vec<Vec<u8>> = Vec::new();
        for (key, entry) in &live {
            // A record that fails to load (corrupt, rejected) is dropped.
            if self.load_record(key).is_ok() {
                offsets.push((entry.offset, entry.len));
                kept += 1;
            }
        }
        offsets.sort_unstable();
        for (offset, len) in &offsets {
            self.file.seek(SeekFrom::Start(*offset))?;
            let mut record = vec![0u8; 8 + *len as usize];
            self.file.read_exact(&mut record)?;
            records.push(record);
        }

        let tmp_path = self.dir.join(format!("{STORE_FILE}.tmp"));
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&MAGIC)?;
        tmp.write_all(&VERSION.to_le_bytes())?;
        for record in &records {
            tmp.write_all(record)?;
        }
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, self.dir.join(STORE_FILE))?;

        let file_len = tmp.metadata()?.len();
        self.file = tmp;
        self.rescan(file_len)?;
        Ok(CompactStats {
            kept,
            dropped: live.len() - kept + self.unindexed,
            bytes_before,
            bytes_after: file_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_spec::solve;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("evcap-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn solved(policy: PolicySpec, e: f64) -> SolvedPolicy {
        let s = Scenario::new("weibull:40,3", policy, e)
            .unwrap()
            .with_horizon(4_096);
        solve(&s).unwrap()
    }

    #[test]
    fn append_load_round_trips_every_family() {
        let dir = tmpdir("roundtrip");
        let mut store = Store::open(&dir).unwrap();
        let families = [
            PolicySpec::Greedy,
            PolicySpec::Clustering,
            PolicySpec::Aggressive,
            PolicySpec::Periodic { theta1: 3 },
            PolicySpec::Myopic,
        ];
        for policy in families {
            let artifact = solved(policy, 0.5);
            store.append(&artifact).unwrap();
            let key = artifact.scenario.canonical_key();
            let loaded = store.load(&key).unwrap();
            assert_eq!(artifact.meta, loaded.meta, "{}", policy.name());
            assert_eq!(artifact.params, loaded.params, "{}", policy.name());
            for state in 1..=128 {
                assert_eq!(
                    artifact.probability(state).to_bits(),
                    loaded.probability(state).to_bits(),
                    "{} state {state}",
                    policy.name()
                );
            }
        }
        assert_eq!(store.len(), families.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_rebuilds_the_index() {
        let dir = tmpdir("reopen");
        let artifact = solved(PolicySpec::Clustering, 0.5);
        let key = artifact.scenario.canonical_key();
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(&artifact).unwrap();
        }
        let mut store = Store::open(&dir).unwrap();
        assert!(store.contains(&key));
        let loaded = store.load(&key).unwrap();
        assert_eq!(artifact.meta, loaded.meta);
        assert!(store.verify().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_and_overwritten() {
        let dir = tmpdir("torn");
        let a = solved(PolicySpec::Clustering, 0.5);
        let b = solved(PolicySpec::Clustering, 0.6);
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(&a).unwrap();
        }
        // Simulate a crash mid-append: half a record header at the tail.
        let path = dir.join(STORE_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);

        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        store.append(&b).unwrap();
        drop(store);

        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.load(&b.scenario.canonical_key()).is_ok());
        assert!(store.verify().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_is_indexed_but_rejected_on_load() {
        let dir = tmpdir("corrupt");
        let artifact = solved(PolicySpec::Clustering, 0.5);
        let key = artifact.scenario.canonical_key();
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(&artifact).unwrap();
        }
        // Flip the last payload byte: the scenario prefix still decodes
        // (so the key stays indexed) but the checksum now fails.
        let path = dir.join(STORE_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut store = Store::open(&dir).unwrap();
        assert!(
            store.contains(&key),
            "bad-checksum record must stay indexed"
        );
        match store.load(&key) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected checksum corruption, got {other:?}"),
        }
        let report = store.verify().unwrap();
        assert_eq!(report.valid, 0);
        assert_eq!(report.corrupt.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_keeps_last_record_per_key_and_drops_corruption() {
        let dir = tmpdir("compact");
        let a = solved(PolicySpec::Clustering, 0.5);
        let b = solved(PolicySpec::Greedy, 0.5);
        let mut store = Store::open(&dir).unwrap();
        store.append(&a).unwrap();
        store.append(&a).unwrap(); // superseded duplicate
        store.append(&b).unwrap();
        let before = store.bytes();
        let stats = store.compact().unwrap();
        assert_eq!(stats.kept, 2);
        assert_eq!(stats.bytes_before, before);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(store.len(), 2);
        assert!(store.load(&a.scenario.canonical_key()).is_ok());
        assert!(store.load(&b.scenario.canonical_key()).is_ok());
        assert!(store.verify().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_hint_finds_the_nearest_clustering_neighbor() {
        let dir = tmpdir("warmhint");
        let mut store = Store::open(&dir).unwrap();
        let near = solved(PolicySpec::Clustering, 0.48);
        let far = solved(PolicySpec::Clustering, 0.30);
        let other = solved(PolicySpec::Greedy, 0.5);
        store.append(&far).unwrap();
        store.append(&near).unwrap();
        store.append(&other).unwrap();

        let target = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.5)
            .unwrap()
            .with_horizon(4_096);
        let hint = store.warm_hint(&target).expect("neighbor exists");
        let expected = match near.params {
            PolicyParams::Clustering { n1, n2, n3, .. } => (n1, n2, n3),
            _ => unreachable!(),
        };
        assert_eq!(hint, expected);

        // Different battery ⇒ not a neighbor; greedy target ⇒ no hint.
        let alien = target.clone().with_battery(5.0);
        assert!(store.warm_hint(&alien).is_none());
        let greedy_target = Scenario::new("weibull:40,3", PolicySpec::Greedy, 0.5).unwrap();
        assert!(store.warm_hint(&greedy_target).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_files_still_open_and_load() {
        // A store written before objectives existed: the same bytes a v1
        // build produced (QoM payloads are unchanged), under a v1 header.
        let dir = tmpdir("v1compat");
        let artifact = solved(PolicySpec::Clustering, 0.5);
        let key = artifact.scenario.canonical_key();
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(&artifact).unwrap();
        }
        let path = dir.join(STORE_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let mut store = Store::open(&dir).unwrap();
        let loaded = store.load(&key).unwrap();
        assert_eq!(artifact.meta, loaded.meta);
        assert_eq!(loaded.scenario.objective(), evcap_core::Objective::Qom);
        // Appends into the old-header file keep working; both generations
        // of record coexist.
        let aoi = {
            let s = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.5)
                .unwrap()
                .with_horizon(4_096)
                .with_objective(evcap_core::Objective::AoiMean);
            solve(&s).unwrap()
        };
        store.append(&aoi).unwrap();
        drop(store);
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        let back = store.load(&aoi.scenario.canonical_key()).unwrap();
        assert_eq!(back.meta, aoi.meta);
        assert!(store.verify().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_and_version_are_structured_errors() {
        let dir = tmpdir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(STORE_FILE), b"NOPE\x01\x00\x00\x00").unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(dir.join(STORE_FILE), &bytes).unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::WrongVersion { found: 99, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
