//! Property tests for the record wire format and the store's corruption
//! handling: encode/decode round-trips are bit-identical for arbitrary
//! artifacts, and truncated / bit-flipped / garbage records and wrong
//! headers always surface as structured errors — never panics, never
//! silently wrong data.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use evcap_core::{ClusterEvaluation, Objective};
use evcap_spec::{PolicyParams, PolicySpec, Scenario};
use evcap_store::format::{self, crc32, MAGIC, MIN_VERSION, VERSION};
use evcap_store::{Store, StoreError, STORE_FILE};
use proptest::prelude::*;

/// A fresh per-case scratch directory (cases run sequentially).
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "evcap-store-prop-{label}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes a syntactically valid store file containing `payloads` as
/// records, bypassing [`Store`] so tests control every byte.
fn write_store(dir: &Path, payloads: &[Vec<u8>]) {
    write_store_versioned(dir, VERSION, payloads);
}

/// [`write_store`] with an explicit header version, for the v1/v2
/// compatibility cases.
fn write_store_versioned(dir: &Path, version: u32, payloads: &[Vec<u8>]) {
    std::fs::create_dir_all(dir).unwrap();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&version.to_le_bytes());
    for payload in payloads {
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
    }
    std::fs::write(dir.join(STORE_FILE), &bytes).unwrap();
}

fn dist_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("weibull:40,3"),
        Just("weibull:8,3"),
        Just("exp:0.05"),
        Just("exp:0.1"),
        Just("det:7"),
        Just("pareto:2,10"),
    ]
}

/// Jointly generates a policy family and matching solver parameters (the
/// format rejects mismatched family tags, so they must agree).
fn family_strategy() -> impl Strategy<Value = (PolicySpec, PolicyParams)> {
    let bit = (0u8..2).prop_map(|b| b == 1);
    prop_oneof![
        (
            proptest::collection::vec(0.0f64..1.0, 0..48),
            0.0f64..1.0,
            0.0f64..64.0,
            0.0f64..2.0,
        )
            .prop_map(
                |(coefficients, tail_coefficient, ideal_qom, discharge_rate)| (
                    PolicySpec::Greedy,
                    PolicyParams::Greedy {
                        coefficients,
                        tail_coefficient,
                        ideal_qom,
                        discharge_rate,
                    }
                )
            ),
        // Long equal-coefficient runs, to exercise the RLE path.
        (proptest::collection::vec(0u8..3, 0..200), 0.0f64..1.0).prop_map(
            |(levels, tail_coefficient)| (
                PolicySpec::Greedy,
                PolicyParams::Greedy {
                    coefficients: levels.into_iter().map(|l| f64::from(l) / 2.0).collect(),
                    tail_coefficient,
                    ideal_qom: 1.0,
                    discharge_rate: 0.5,
                }
            )
        ),
        (
            1usize..64,
            1usize..96,
            1usize..128,
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        )
            .prop_map(|(n1, n2, n3, boundary)| (
                PolicySpec::Clustering,
                PolicyParams::Clustering {
                    n1,
                    n2,
                    n3,
                    boundary,
                }
            )),
        Just((PolicySpec::Aggressive, PolicyParams::Aggressive)),
        (1u64..12, 1u64..4096).prop_map(|(theta1, theta2)| (
            PolicySpec::Periodic { theta1 },
            PolicyParams::Periodic { theta1, theta2 }
        )),
        (
            proptest::collection::vec(bit, 0..64),
            0.0f64..1.0,
            (0.0f64..1.0, 0.0f64..1.0, 1.0f64..100.0, 0.0f64..1.0),
        )
            .prop_map(|(active, threshold, (cap, dis, cyc, sur))| (
                PolicySpec::Myopic,
                PolicyParams::Myopic {
                    active,
                    threshold,
                    evaluation: ClusterEvaluation {
                        capture_probability: cap,
                        discharge_rate: dis,
                        expected_cycle: cyc,
                        truncated_survival: sur,
                    },
                }
            )),
    ]
}

fn objective_strategy() -> impl Strategy<Value = Objective> {
    prop_oneof![
        Just(Objective::Qom),
        Just(Objective::AoiMean),
        Just(Objective::AoiPeak),
    ]
}

/// An arbitrary `(Scenario, PolicyParams, iterations)` artifact triple,
/// spanning both record generations (QoM spells the v1 layout; the age
/// objectives take the v2 marker prefix).
fn artifact_strategy() -> impl Strategy<Value = (Scenario, PolicyParams, u64)> {
    (
        dist_strategy(),
        family_strategy(),
        objective_strategy(),
        (0.05f64..1.5, 0.25f64..4.0, 0.5f64..16.0),
        (1.0f64..20.0, 64usize..8192, 1usize..8),
        0u64..1_000_000,
    )
        .prop_map(
            |(
                dist,
                (policy, params),
                objective,
                (e, delta1, delta2),
                (battery, horizon, sensors),
                iters,
            )| {
                let scenario = Scenario::new(dist, policy, e)
                    .expect("pool specs are valid")
                    .with_costs(delta1, delta2)
                    .with_battery(battery)
                    .with_horizon(horizon)
                    .with_sensors(sensors)
                    .with_objective(objective);
                (scenario, params, iters)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_round_trips_bit_identical(
        (scenario, params, iterations) in artifact_strategy(),
    ) {
        let payload = format::encode(&scenario, &params, iterations);
        let (back_scenario, back_params, back_iterations) =
            format::decode(&payload).expect("own encoding must decode");
        prop_assert_eq!(back_scenario.canonical_key(), scenario.canonical_key());
        prop_assert_eq!(&back_params, &params);
        prop_assert_eq!(back_iterations, iterations);
        // Bit-identity: re-encoding the decoded artifact reproduces the
        // original bytes exactly (floats travel as raw IEEE-754 bits).
        let again = format::encode(&back_scenario, &back_params, back_iterations);
        prop_assert_eq!(again, payload);
        // The scan-time prefix decode agrees on the key too.
        let prefix = format::decode_scenario(&payload).expect("prefix decodes");
        prop_assert_eq!(prefix.canonical_key(), scenario.canonical_key());
    }

    #[test]
    fn truncated_payloads_are_structured_errors(
        (scenario, params, iterations) in artifact_strategy(),
        cut in 0usize..1_000_000,
    ) {
        let payload = format::encode(&scenario, &params, iterations);
        let k = cut % payload.len();
        // Every strict prefix must fail to decode — cleanly.
        prop_assert!(format::decode(&payload[..k]).is_err());
    }

    #[test]
    fn bit_flips_never_panic_the_decoder(
        (scenario, params, iterations) in artifact_strategy(),
        flip in 0usize..1_000_000,
    ) {
        let mut payload = format::encode(&scenario, &params, iterations);
        let bit = flip % (payload.len() * 8);
        payload[bit / 8] ^= 1 << (bit % 8);
        // A flipped payload may or may not decode structurally (the CRC is
        // what catches value damage); it must never panic, and whatever it
        // does decode must itself round-trip stably (re-encoding is not
        // byte-identical to the tampered input — RLE boundaries and spec
        // canonicalization are not injective — but it is value-identical).
        if let Ok((s, p, i)) = format::decode(&payload) {
            let again = format::encode(&s, &p, i);
            let (s2, p2, i2) = format::decode(&again).expect("re-encoding must decode");
            prop_assert_eq!(s2.canonical_key(), s.canonical_key());
            prop_assert_eq!(p2, p);
            prop_assert_eq!(i2, i);
        }
    }

    #[test]
    fn garbage_payloads_are_structured_errors(
        junk in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        prop_assert!(format::decode(&junk).is_err());
        // The index scan's prefix decode must be equally unimpressed.
        let _ = format::decode_scenario(&junk);
    }
}

proptest! {
    // Store-level cases touch the filesystem; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn on_disk_bit_flips_surface_as_errors_not_data(
        (scenario, params, iterations) in artifact_strategy(),
        flip in 0usize..1_000_000,
    ) {
        let dir = scratch("flip");
        let payload = format::encode(&scenario, &params, iterations);
        let key = scenario.canonical_key();
        write_store(&dir, std::slice::from_ref(&payload));

        // Sanity: the untampered record loads.
        let mut store = Store::open(&dir).unwrap();
        prop_assert!(store.load_record(&key).is_ok());
        drop(store);

        // Flip one bit anywhere past the 8-byte file header.
        let path = dir.join(STORE_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let body_bits = (bytes.len() - 8) * 8;
        let bit = 64 + flip % body_bits;
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();

        // The store must open (scan tolerates damage) and the original
        // key must never yield data from the tampered record: it is
        // either gone from the index or rejected by the checksum.
        let mut store = Store::open(&dir).unwrap();
        match store.load_record(&key) {
            Ok(_) => panic!("tampered record served as valid data"),
            Err(StoreError::Corrupt { .. } | StoreError::NotFound { .. }) => {}
            Err(other) => panic!("unexpected error class: {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_headers_are_structured_errors(
        version in (VERSION + 1)..1_000_000,
        corrupt_byte in 0usize..4,
        tweak in 1u8..=255,
    ) {
        // Unsupported versions — future (> VERSION) and prehistoric (0,
        // below MIN_VERSION) — with the right magic.
        let dir = scratch("header");
        std::fs::create_dir_all(&dir).unwrap();
        for bad in [version, MIN_VERSION - 1] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&bad.to_le_bytes());
            std::fs::write(dir.join(STORE_FILE), &bytes).unwrap();
            match Store::open(&dir) {
                Err(StoreError::WrongVersion { found, expected }) => {
                    prop_assert_eq!(found, bad);
                    prop_assert_eq!(expected, VERSION);
                }
                other => panic!("expected WrongVersion, got {other:?}"),
            }
        }

        // Wrong magic.
        let mut magic = MAGIC;
        magic[corrupt_byte] ^= tweak;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&magic);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        std::fs::write(dir.join(STORE_FILE), &bytes).unwrap();
        prop_assert!(matches!(Store::open(&dir), Err(StoreError::BadMagic { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_generation_files_index_and_load_every_record(
        artifacts in proptest::collection::vec(artifact_strategy(), 1..6),
        v1_header in (0u8..2).prop_map(|b| b == 1),
    ) {
        // A file holding both record generations at once — QoM records in
        // the v1 byte layout next to marker-prefixed age records — under
        // either accepted header version, must index fully and hand every
        // record back with its objective intact.
        let dir = scratch("mixed");
        let mut seen = std::collections::HashMap::new();
        for (s, p, i) in artifacts {
            seen.insert(s.canonical_key(), (s, p, i));
        }
        let payloads: Vec<Vec<u8>> = seen
            .values()
            .map(|(s, p, i)| format::encode(s, p, *i))
            .collect();
        let version = if v1_header { MIN_VERSION } else { VERSION };
        write_store_versioned(&dir, version, &payloads);

        let mut store = Store::open(&dir).unwrap();
        prop_assert_eq!(store.len(), seen.len());
        for (key, (s, p, i)) in &seen {
            let (rs, rp, ri) = store.load_record(key).unwrap();
            prop_assert_eq!(&rs, s);
            prop_assert_eq!(&rp, p);
            prop_assert_eq!(ri, *i);
            prop_assert_eq!(rs.objective(), s.objective());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
