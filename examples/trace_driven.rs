//! Trace-driven optimization: fit the event process from a deployment log.
//!
//! Run with `cargo run --release --example trace_driven`.
//!
//! In practice the inter-arrival law is unknown — you have last month's
//! event log. This example plays that workflow end to end:
//!
//! 1. a "deployment" phase generates a month of events from a ground-truth
//!    process the operator never sees (LogNormal gaps);
//! 2. the observed gaps are fitted into an empirical [`SlotPmf`]
//!    (`EmpiricalGaps`, with tail smoothing);
//! 3. the greedy policy is optimized against the *fitted* process;
//! 4. the policy is evaluated on fresh months drawn from the ground truth,
//!    against an oracle policy optimized on the truth itself.
//!
//! The gap between "fitted" and "oracle" is the price of estimation — small,
//! because the policy only needs the hazard profile, not the exact law.

use evcap::core::{EnergyBudget, GreedyPolicy};
use evcap::dist::{Discretizer, EmpiricalGaps, LogNormal};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy};
use evcap::sim::{replicate, EventSchedule, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth the operator never sees: LogNormal gaps, mean ≈ 30 slots.
    let truth = Discretizer::new().discretize(&LogNormal::from_mean_cv(30.0, 0.45)?)?;
    let consumption = ConsumptionModel::paper_defaults();
    let e = 0.45;
    let budget = EnergyBudget::per_slot(e);

    // 1. One observed month (43 200 minutes).
    let month = 43_200;
    let log = EventSchedule::generate(&truth, month, 1)?;
    println!("observed {} events over one month", log.count());

    // 2. Fit the empirical process from the logged event slots.
    let fitted = EmpiricalGaps::from_event_slots(log.event_slots())?.to_slot_pmf(Some(0.5))?;
    println!(
        "fitted mean gap {:.2} vs truth {:.2} slots",
        fitted.mean(),
        truth.mean()
    );

    // 3. Optimize on the fit; also build the oracle for comparison.
    let policy = GreedyPolicy::optimize(&fitted, budget, &consumption)?;
    let oracle = GreedyPolicy::optimize(&truth, budget, &consumption)?;

    // 4. Evaluate both on fresh ground-truth months, with error bars.
    let run = |p: &GreedyPolicy| {
        replicate(100, 8, |seed| {
            Simulation::builder(&truth)
                .slots(month)
                .seed(seed)
                .battery(Energy::from_units(1000.0))
                .run(p, &mut |_| {
                    Box::new(
                        BernoulliRecharge::new(0.5, Energy::from_units(2.0 * e)).expect("valid"),
                    )
                })
                .expect("valid simulation")
                .qom()
        })
    };
    let fitted_perf = run(&policy);
    let oracle_perf = run(&oracle);
    println!(
        "trace-fitted policy : QoM {:.4} ± {:.4} (95% CI over 8 months)",
        fitted_perf.mean,
        fitted_perf.half_width(1.96)
    );
    println!(
        "oracle policy       : QoM {:.4} ± {:.4}",
        oracle_perf.mean,
        oracle_perf.half_width(1.96)
    );
    println!(
        "estimation cost     : {:.4} QoM",
        oracle_perf.mean - fitted_perf.mean
    );
    Ok(())
}
