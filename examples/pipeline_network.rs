//! Fleet planning across a pipeline network — multiple PoIs, one budget.
//!
//! Run with `cargo run --release --example pipeline_network`.
//!
//! A water utility monitors four pipeline segments whose leak statistics
//! (and consequence severities) differ. Ten harvesting sensors must be
//! split among them. The [`FleetAllocator`] hands out sensors by optimal
//! greedy marginal gain over each segment's Theorem-1 value curve; we then
//! validate the plan in simulation (each segment runs the M-FI scheme on
//! its share) and compare against the naive even split.

use evcap::core::{EnergyBudget, FleetAllocator, MultiSensorPlan, PoiSpec};
use evcap::dist::{Discretizer, Pareto, Weibull};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy};
use evcap::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let consumption = ConsumptionModel::paper_defaults();
    let per_sensor = EnergyBudget::per_slot(0.12);
    let fleet = 10usize;

    // Four segments: aging trunk main (frequent, critical), two arterials,
    // and a new lateral with rare heavy-tailed failures.
    let pois = [
        (
            "trunk main",
            PoiSpec {
                pmf: Discretizer::new().discretize(&Weibull::new(25.0, 3.0)?)?,
                weight: 3.0,
            },
        ),
        (
            "arterial A",
            PoiSpec {
                pmf: Discretizer::new().discretize(&Weibull::new(40.0, 3.0)?)?,
                weight: 1.5,
            },
        ),
        (
            "arterial B",
            PoiSpec {
                pmf: Discretizer::new().discretize(&Weibull::new(55.0, 2.5)?)?,
                weight: 1.0,
            },
        ),
        (
            "new lateral",
            PoiSpec {
                pmf: Discretizer::new()
                    .max_horizon(2_000)
                    .discretize(&Pareto::new(2.0, 30.0)?)?,
                weight: 0.5,
            },
        ),
    ];
    let specs: Vec<PoiSpec> = pois.iter().map(|(_, s)| s.clone()).collect();

    let allocator = FleetAllocator::new(per_sensor, consumption);
    let plan = allocator.allocate(&specs, fleet)?;

    println!(
        "{:<12} {:>7} {:>8} {:>12} {:>14}",
        "segment", "weight", "sensors", "planned QoM", "simulated QoM"
    );
    let mut planned_total = 0.0;
    let mut simulated_total = 0.0;
    for (i, (name, spec)) in pois.iter().enumerate() {
        let n = plan.allocation[i];
        let simulated = if n == 0 {
            0.0
        } else {
            let mfi = MultiSensorPlan::m_fi(&spec.pmf, per_sensor, n, &consumption)?;
            Simulation::builder(&spec.pmf)
                .slots(400_000)
                .seed(31 + i as u64)
                .sensors(n)
                .assignment(mfi.assignment())
                .battery(Energy::from_units(1000.0))
                .run(mfi.policy(), &mut |_| {
                    Box::new(BernoulliRecharge::new(0.4, Energy::from_units(0.3)).expect("valid"))
                })?
                .qom()
        };
        println!(
            "{:<12} {:>7} {:>8} {:>12.4} {:>14.4}",
            name, spec.weight, n, plan.expected_qom[i], simulated
        );
        planned_total += spec.weight * plan.expected_qom[i];
        simulated_total += spec.weight * simulated;
    }
    println!();
    println!("weighted QoM  planned {planned_total:.4}, simulated {simulated_total:.4}");

    // Compare with the naive even split.
    let even = fleet / specs.len();
    let mut even_total = 0.0;
    for spec in &specs {
        even_total += spec.weight * allocator.poi_value(&spec.pmf, even)?;
    }
    println!("even split    planned {even_total:.4}");
    println!(
        "→ optimal allocation gains {:+.1}% weighted QoM over the even split",
        100.0 * (planned_total - even_total) / even_total
    );
    Ok(())
}
