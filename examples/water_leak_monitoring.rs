//! Water-distribution leak monitoring — the paper's full-information
//! motivating scenario.
//!
//! Run with `cargo run --release --example water_leak_monitoring`.
//!
//! A leak must be captured *in the slot it starts* to limit damage, but a
//! missed leak still leaves stains, so at the end of every slot the sensor
//! knows whether one occurred (full information). Leaks cluster around an
//! aging-driven timescale, modeled here as Weibull(40, 3) gaps in hours.
//!
//! We compare three strategies for a solar-harvesting acoustic sensor
//! (`e = 0.4` units/hour): the Theorem-1 greedy policy, the aggressive
//! policy, and an energy-balanced periodic schedule — all on the *same*
//! sampled leak timeline.

use evcap::core::{ActivationPolicy, AggressivePolicy, EnergyBudget, GreedyPolicy, PeriodicPolicy};
use evcap::dist::{Discretizer, Weibull};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy};
use evcap::sim::{EventSchedule, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pmf = Discretizer::new().discretize(&Weibull::new(40.0, 3.0)?)?;
    let consumption = ConsumptionModel::paper_defaults();
    let e = 0.4;
    let budget = EnergyBudget::per_slot(e);

    let greedy = GreedyPolicy::optimize(&pmf, budget, &consumption)?;
    let aggressive = AggressivePolicy::new();
    let periodic = PeriodicPolicy::energy_balanced(3, budget, pmf.mean(), &consumption)?;

    // One shared leak timeline: a year of hourly slots.
    let slots = 24 * 365 * 3;
    let schedule = EventSchedule::generate(&pmf, slots, 7)?;
    println!(
        "three years of hourly slots, {} leak events, mean gap {:.1} h",
        schedule.count(),
        pmf.mean()
    );
    println!("solar recharge: Bernoulli q=0.8, 0.5 units/h (e = {e})");
    println!();
    println!(
        "{:<42} {:>9} {:>9} {:>8}",
        "policy", "captured", "missed", "QoM"
    );

    let policies: [&dyn ActivationPolicy; 3] = [&greedy, &aggressive, &periodic];
    for policy in policies {
        let report = Simulation::builder(&pmf)
            .slots(slots)
            .seed(7)
            .battery(Energy::from_units(500.0))
            .run_on(&schedule, policy, &mut |_| {
                Box::new(BernoulliRecharge::new(0.8, Energy::from_units(0.5)).expect("valid"))
            })?;
        println!(
            "{:<42} {:>9} {:>9} {:>8.4}",
            policy.label(),
            report.captures,
            report.events - report.captures,
            report.qom()
        );
    }
    println!();
    println!(
        "greedy ideal QoM under the energy assumption: {:.4}",
        greedy.ideal_qom()
    );
    println!("→ exploiting leak-interval memory beats both memoryless baselines");
    Ok(())
}
