//! Wildlife sighting capture — a partial-information scenario.
//!
//! Run with `cargo run --release --example wildlife_partial_info`.
//!
//! A camera trap powered by a kinetic harvester watches a trail where an
//! animal passes at heavy-tailed (Pareto) intervals: never sooner than 10
//! minutes after the previous pass, occasionally not for hours. A sleeping
//! camera learns *nothing* about missed passes (partial information), so the
//! paper's clustering policy applies: cool down through the dead zone, go
//! hot where the hazard peaks, and fall back to aggressive recovery when the
//! schedule has drifted.
//!
//! The example prints the optimized region structure and compares it against
//! the aggressive baseline on a shared sighting timeline.

use evcap::core::{AggressivePolicy, ClusteringOptimizer, EnergyBudget, EvalOptions};
use evcap::dist::{Discretizer, Pareto};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy};
use evcap::sim::{EventSchedule, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pareto(2, 10): gaps of at least 10 slots, decreasing hazard after.
    let pmf = Discretizer::new()
        .max_horizon(2_000)
        .discretize(&Pareto::new(2.0, 10.0)?)?;
    let consumption = ConsumptionModel::paper_defaults();
    let e = 0.6;

    let (policy, eval) = ClusteringOptimizer::new(EnergyBudget::per_slot(e))
        .eval_options(EvalOptions {
            survival_eps: 1e-9,
            max_slots: 4_000,
        })
        .optimize(&pmf, &consumption)?;

    println!(
        "event process : {} (mean gap {:.1} slots)",
        pmf.label(),
        pmf.mean()
    );
    println!("harvest rate  : e = {e} units/slot");
    println!();
    println!("optimized clustering regions:");
    println!("  cooling  : slots 1..{}", policy.n1().saturating_sub(1));
    println!("  hot      : slots {}..={}", policy.n1(), policy.n2());
    println!(
        "  cooling  : slots {}..{}",
        policy.n2() + 1,
        policy.n3().saturating_sub(1)
    );
    println!("  recovery : slots {}.. (aggressive)", policy.n3());
    let (c1, c2, c3) = policy.boundary_coefficients();
    println!("  boundary coefficients: c_n1={c1:.3}, c_n2={c2:.3}, c_n3={c3:.3}");
    println!(
        "  analytic: QoM {:.4}, discharge {:.4} ≤ e, cycle {:.1} slots",
        eval.capture_probability, eval.discharge_rate, eval.expected_cycle
    );
    println!();

    let slots = 500_000;
    let schedule = EventSchedule::generate(&pmf, slots, 99)?;
    let mut recharge = |_: usize| {
        Box::new(BernoulliRecharge::new(0.5, Energy::from_units(2.0 * e)).expect("valid"))
            as Box<dyn evcap::energy::RechargeProcess>
    };
    let sim = Simulation::builder(&pmf)
        .slots(slots)
        .seed(99)
        .battery(Energy::from_units(1000.0));
    let clustered = sim.clone().run_on(&schedule, &policy, &mut recharge)?;
    let aggressive = sim.run_on(&schedule, &AggressivePolicy::new(), &mut recharge)?;

    println!(
        "clustering : {}/{} passes captured (QoM {:.4})",
        clustered.captures,
        clustered.events,
        clustered.qom()
    );
    println!(
        "aggressive : {}/{} passes captured (QoM {:.4})",
        aggressive.captures,
        aggressive.events,
        aggressive.qom()
    );
    println!("→ sleeping through the 10-slot dead zone pays for the hot region");
    Ok(())
}
