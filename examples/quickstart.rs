//! Quickstart: optimize an activation policy and verify it in simulation.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! A single rechargeable sensor watches a point of interest where events
//! arrive as a renewal process with Weibull(40, 3) inter-arrival times. Its
//! harvester delivers on average `e = 0.5` energy units per slot; sensing
//! costs `δ1 = 1` per active slot and capturing an event costs `δ2 = 6`
//! more. We compute the optimal full-information policy (Theorem 1), look at
//! its structure, and then play it against a finite-battery simulation.

use evcap::core::{ActivationPolicy, EnergyBudget, GreedyPolicy};
use evcap::dist::{Discretizer, Weibull};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy};
use evcap::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The event process, slotted.
    let weibull = Weibull::new(40.0, 3.0)?;
    let pmf = Discretizer::new().discretize(&weibull)?;
    println!("event process : {}", pmf.label());
    println!("mean gap      : {:.2} slots", pmf.mean());

    // 2. The optimal greedy policy for e = 0.5.
    let consumption = ConsumptionModel::paper_defaults();
    let budget = EnergyBudget::per_slot(0.5);
    let policy = GreedyPolicy::optimize(&pmf, budget, &consumption)?;
    println!("policy        : {}", policy.label());
    println!(
        "ideal QoM     : {:.4} (energy assumption)",
        policy.ideal_qom()
    );

    // Show the water-filling structure: cooling until the hazard justifies
    // the energy, then always-on.
    let first_active = (1..=pmf.horizon())
        .find(|&i| policy.coefficient(i) > 0.0)
        .expect("some slot is active");
    println!(
        "structure     : sleep through slots 1..{}, c_{} = {:.3}, then activate",
        first_active - 1,
        first_active,
        policy.coefficient(first_active)
    );

    // 3. Simulate against a real K = 1000 battery and Bernoulli recharge.
    for k in [20.0, 100.0, 1000.0] {
        let report = Simulation::builder(&pmf)
            .slots(1_000_000)
            .seed(42)
            .battery(Energy::from_units(k))
            .run(&policy, &mut |_| {
                Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("valid"))
            })?;
        println!(
            "K = {k:>6}    : captured {}/{} events, QoM = {:.4}",
            report.captures,
            report.events,
            report.qom()
        );
    }
    println!("→ the achieved QoM converges to the ideal as K grows (paper Fig. 3a)");
    Ok(())
}
