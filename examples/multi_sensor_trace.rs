//! Multi-sensor coordination — the worked trace from Section V of the paper.
//!
//! Run with `cargo run --release --example multi_sensor_trace`.
//!
//! Two sensors round-robin over slots (sensor 1 takes odd slots, sensor 2
//! even) and the responsible sensor follows the greedy policy computed for
//! the *aggregate* recharge rate `2e` (the M-FI scheme). The example prints
//! a slot-by-slot trace in the format of the paper's Section V table, then
//! scales the fleet up and shows the QoM gain.

use evcap::core::{EnergyBudget, MultiSensorPlan};
use evcap::dist::{Discretizer, Weibull};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy};
use evcap::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pmf = Discretizer::new().discretize(&Weibull::new(8.0, 4.0)?)?;
    let consumption = ConsumptionModel::paper_defaults();
    let per_sensor = EnergyBudget::per_slot(0.3);

    // The M-FI plan: greedy policy at aggregate rate 2e, round-robin slots.
    let plan = MultiSensorPlan::m_fi(&pmf, per_sensor, 2, &consumption)?;
    println!(
        "policy: {}",
        evcap::core::ActivationPolicy::label(plan.policy())
    );
    println!();

    let report = Simulation::builder(&pmf)
        .slots(1_000)
        .seed(5)
        .sensors(2)
        .assignment(plan.assignment())
        .battery(Energy::from_units(1000.0))
        .trace_slots(16)
        .run(plan.policy(), &mut |_| {
            Box::new(BernoulliRecharge::new(0.5, Energy::from_units(0.6)).expect("valid"))
        })?;

    // The Section V trace table: I = not in charge, a1 = activate, a2 = idle.
    println!(
        "slot t            : {}",
        row(&report.trace, |r| format!("{:>3}", r.slot))
    );
    println!(
        "sensor in charge  : {}",
        row(&report.trace, |r| format!("{:>3}", r.owner + 1))
    );
    println!(
        "event state H_t   : {}",
        row(&report.trace, |r| format!("h{:<2}", r.state))
    );
    for sensor in 0..2 {
        let actions = row(&report.trace, |r| {
            if r.owner != sensor {
                format!("{:>3}", "I")
            } else if r.active {
                format!("{:>3}", "a1")
            } else {
                format!("{:>3}", "a2")
            }
        });
        println!("sensor {}'s action : {actions}", sensor + 1);
    }
    println!(
        "event V_t         : {}",
        row(&report.trace, |r| format!("{:>3}", u8::from(r.event)))
    );
    println!(
        "captured          : {}",
        row(&report.trace, |r| format!("{:>3}", u8::from(r.captured)))
    );
    println!();

    // Fleet scaling: the per-sensor recharge stays fixed; pooled energy and
    // round-robin coordination push the QoM toward 1 (paper Fig. 6a).
    println!("{:>3}  {:>8}  {:>10}", "N", "QoM", "balance");
    for n in [1usize, 2, 4, 8] {
        let plan = MultiSensorPlan::m_fi(&pmf, per_sensor, n, &consumption)?;
        let report = Simulation::builder(&pmf)
            .slots(300_000)
            .seed(5)
            .sensors(n)
            .assignment(plan.assignment())
            .battery(Energy::from_units(1000.0))
            .run(plan.policy(), &mut |_| {
                Box::new(BernoulliRecharge::new(0.5, Energy::from_units(0.6)).expect("valid"))
            })?;
        println!(
            "{n:>3}  {:>8.4}  {:>10.3}",
            report.qom(),
            report.load_balance()
        );
    }
    Ok(())
}

/// Formats one row of the trace table.
fn row(
    trace: &[evcap::sim::TraceRecord],
    f: impl Fn(&evcap::sim::TraceRecord) -> String,
) -> String {
    trace.iter().map(f).collect::<Vec<_>>().join(" ")
}
