//! `evcap` — dynamic activation policies for event capture with rechargeable
//! sensors.
//!
//! A faithful, production-quality reproduction of *Ren, Cheng, Chen, Yau,
//! Sun — "Dynamic Activation Policies for Event Capture with Rechargeable
//! Sensors" (ICDCS 2012)*, organized as a workspace of focused crates and
//! re-exported here for convenience:
//!
//! * [`dist`] — inter-arrival distributions (Weibull, Pareto, exponential,
//!   Markov-derived, …) and their slotted pmfs;
//! * [`renewal`] — discrete renewal theory and the censored age-belief
//!   propagation behind the partial-information analysis;
//! * [`energy`] — fixed-point energy accounting, batteries, and recharge
//!   processes;
//! * [`lp`] — a small simplex solver used to certify Theorem 1;
//! * [`core`] — the activation policies: the greedy full-information optimum,
//!   the clustering heuristic for partial information, the aggressive /
//!   periodic / EBCW baselines, and multi-sensor coordination;
//! * [`sim`] — the slotted simulator that plays policies against sampled
//!   event timelines with real finite batteries;
//! * [`spec`] — the canonical scenario layer shared by the CLI, the serve
//!   daemon, and the bench runners: parse a [`spec::Scenario`] from spec
//!   strings, then [`spec::solve`] it into a [`spec::SolvedPolicy`] bundling
//!   the discretized pmf, the optimized policy, its precompiled activation
//!   table, and solve metadata.
//!
//! # Quickstart
//!
//! The scenario pipeline is the shortest path from a description to a
//! solved policy:
//!
//! ```
//! use evcap::spec::{solve, PolicySpec, Scenario};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::new("weibull:40,3", PolicySpec::Greedy, 0.5)?;
//! let solved = solve(&scenario)?;
//! // U(π*) ≈ 0.804 for Weibull(40, 3) at e = 0.5 with the paper's costs.
//! assert!(solved.meta.objective.expect("greedy reports U(π*)") > 0.8);
//! # Ok(())
//! # }
//! ```
//!
//! The crates underneath stay directly usable when a caller needs more
//! control than the spec layer exposes:
//!
//! ```
//! use evcap::core::{EnergyBudget, GreedyPolicy};
//! use evcap::dist::{Discretizer, Weibull};
//! use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy};
//! use evcap::sim::Simulation;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Events ~ Weibull(40, 3); recharge averages e = 0.5 units/slot.
//! let pmf = Discretizer::new().discretize(&Weibull::new(40.0, 3.0)?)?;
//! let policy = GreedyPolicy::optimize(
//!     &pmf,
//!     EnergyBudget::per_slot(0.5),
//!     &ConsumptionModel::paper_defaults(),
//! )?;
//!
//! // Simulate with a K = 1000 battery and Bernoulli recharge.
//! let report = Simulation::builder(&pmf)
//!     .slots(200_000)
//!     .seed(42)
//!     .battery(Energy::from_units(1000.0))
//!     .run(&policy, &mut |_| {
//!         Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("valid"))
//!     })?;
//!
//! // The achieved QoM approaches the analytic optimum.
//! assert!(report.qom() > policy.ideal_qom() - 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use evcap_core as core;
pub use evcap_dist as dist;
pub use evcap_energy as energy;
pub use evcap_lp as lp;
pub use evcap_renewal as renewal;
pub use evcap_sim as sim;
pub use evcap_spec as spec;
