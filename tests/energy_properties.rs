//! Property-based tests of the simulator's energy accounting and the core
//! invariants of the analytic machinery.

use evcap::core::{AggressivePolicy, ClusteringPolicy, EvalOptions, PeriodicPolicy};
use evcap::dist::SlotPmf;
use evcap::energy::{
    BernoulliRecharge, ConstantRecharge, ConsumptionModel, Energy, PeriodicRecharge,
    RechargeProcess,
};
use evcap::sim::Simulation;
use proptest::prelude::*;

/// An arbitrary small pmf over 1..=8 slots.
fn arb_pmf() -> impl Strategy<Value = SlotPmf> {
    proptest::collection::vec(0.01f64..1.0, 1..8).prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        SlotPmf::from_pmf(raw.into_iter().map(|w| w / total).collect()).expect("normalized")
    })
}

/// An arbitrary recharge process with a modest rate.
fn arb_recharge() -> impl Strategy<Value = (u8, f64, f64)> {
    (0u8..3, 0.05f64..1.0, 0.1f64..3.0)
}

fn build_recharge(kind: u8, q: f64, c: f64) -> Box<dyn RechargeProcess> {
    match kind {
        0 => Box::new(BernoulliRecharge::new(q, Energy::from_units(c)).expect("valid")),
        1 => Box::new(
            PeriodicRecharge::new(Energy::from_units(c), (1.0 / q).ceil() as u32).expect("valid"),
        ),
        _ => Box::new(ConstantRecharge::new(Energy::from_units(q * c)).expect("valid")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Energy is conserved exactly (fixed point!) for every pmf, policy,
    /// recharge process, and battery size.
    #[test]
    fn conservation_and_bounds(
        pmf in arb_pmf(),
        (kind, q, c) in arb_recharge(),
        capacity in 7f64..300.0,
        seed in 0u64..1_000,
    ) {
        let report = Simulation::builder(&pmf)
            .slots(5_000)
            .seed(seed)
            .battery(Energy::from_units(capacity))
            .run(&AggressivePolicy::new(), &mut |_| build_recharge(kind, q, c))
            .expect("valid simulation");
        for s in &report.sensors {
            prop_assert!(s.conserves_energy(), "{s:?}");
            prop_assert!(s.final_level >= Energy::ZERO);
            prop_assert!(s.final_level <= Energy::from_units(capacity));
        }
        prop_assert!(report.captures <= report.events);
        let qom = report.qom();
        prop_assert!((0.0..=1.0).contains(&qom));
    }

    /// The simulator never lets a sensor activate below the δ1+δ2 threshold:
    /// consumed energy never exceeds what was available.
    #[test]
    fn no_overdraft(
        pmf in arb_pmf(),
        seed in 0u64..1_000,
        capacity in 7f64..100.0,
    ) {
        let report = Simulation::builder(&pmf)
            .slots(3_000)
            .seed(seed)
            .battery(Energy::from_units(capacity))
            .run(&AggressivePolicy::new(), &mut |_| {
                Box::new(ConstantRecharge::new(Energy::from_units(0.2)).expect("valid"))
            })
            .expect("valid simulation");
        for s in &report.sensors {
            prop_assert!(s.consumed <= s.initial_level + s.recharged);
        }
    }

    /// The analytic clustering evaluation is a proper probability and its
    /// discharge rate is non-negative, for arbitrary region choices.
    #[test]
    fn clustering_evaluation_is_proper(
        pmf in arb_pmf(),
        n1 in 1usize..6,
        d2 in 0usize..5,
        d3 in 0usize..5,
        c1 in 0f64..=1.0,
        c2 in 0f64..=1.0,
    ) {
        let policy = ClusteringPolicy::new(n1, n1 + d2, n1 + d2 + d3, c1, c2, 1.0)
            .expect("ordered");
        let eval = policy.evaluate(
            &pmf,
            &ConsumptionModel::paper_defaults(),
            EvalOptions::default(),
        );
        prop_assert!((0.0..=1.0).contains(&eval.capture_probability));
        prop_assert!(eval.discharge_rate >= 0.0);
        prop_assert!(eval.expected_cycle >= pmf.mean() - 1e-9);
    }

    /// QoM is monotone (within noise) in the battery capacity for a fixed
    /// policy and recharge process.
    #[test]
    fn bigger_battery_never_hurts_much(
        pmf in arb_pmf(),
        seed in 0u64..200,
    ) {
        let run = |k: f64| {
            Simulation::builder(&pmf)
                .slots(20_000)
                .seed(seed)
                .battery(Energy::from_units(k))
                .run(&AggressivePolicy::new(), &mut |_| {
                    Box::new(BernoulliRecharge::new(0.3, Energy::from_units(1.0)).expect("valid"))
                })
                .expect("valid simulation")
                .qom()
        };
        let small = run(10.0);
        let large = run(500.0);
        prop_assert!(large >= small - 0.05, "K=10 → {small}, K=500 → {large}");
    }

    /// The periodic policy's empirical duty cycle equals θ1/θ2 when energy
    /// is abundant.
    #[test]
    fn periodic_duty_cycle(
        pmf in arb_pmf(),
        theta1 in 1u64..5,
        extra in 0u64..10,
        seed in 0u64..100,
    ) {
        let theta2 = theta1 + extra;
        let policy = PeriodicPolicy::new(theta1, theta2).expect("valid");
        let slots = 30_000u64;
        let report = Simulation::builder(&pmf)
            .slots(slots)
            .seed(seed)
            .battery(Energy::from_units(10_000.0))
            .initial_level(Energy::from_units(10_000.0))
            .run(&policy, &mut |_| {
                Box::new(ConstantRecharge::new(Energy::from_units(8.0)).expect("valid"))
            })
            .expect("valid simulation");
        let duty = report.total_activations() as f64 / slots as f64;
        let expected = theta1 as f64 / theta2 as f64;
        prop_assert!((duty - expected).abs() < 0.01, "{duty} vs {expected}");
    }
}
