//! Cross-crate certification of Theorem 1: the greedy water-filling policy
//! attains the optimum of the constrained-MDP linear program (7)–(8), for
//! increasing, decreasing, and non-monotone hazards.

use evcap::core::{EnergyBudget, GreedyPolicy};
use evcap::dist::{
    Discretizer, Erlang, HyperExponential, MarkovEvents, Pareto, SlotPmf, UniformArrival, Weibull,
};
use evcap::energy::ConsumptionModel;

fn certify(pmf: &SlotPmf, e: f64, horizon: usize, tol: f64) {
    let consumption = ConsumptionModel::paper_defaults();
    let budget = EnergyBudget::per_slot(e);
    let policy = GreedyPolicy::optimize(pmf, budget, &consumption).expect("optimizable");
    let lp = policy
        .certify_against_lp(pmf, budget, &consumption, horizon)
        .expect("lp solves");
    assert!(
        (policy.ideal_qom() - lp).abs() < tol,
        "{} e={e}: greedy {} vs lp {lp}",
        pmf.label(),
        policy.ideal_qom()
    );
    // The greedy policy can never beat the LP relaxation by more than
    // truncation slack, and the LP can never beat the true optimum.
    assert!(policy.ideal_qom() <= 1.0 + 1e-9);
}

#[test]
fn weibull_increasing_hazard() {
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).unwrap())
        .unwrap();
    for e in [0.05, 0.2, 0.5, 1.0, 2.0] {
        certify(&pmf, e, pmf.horizon(), 1e-6);
    }
}

#[test]
fn erlang_increasing_hazard() {
    let pmf = Discretizer::new()
        .discretize(&Erlang::new(4, 0.2).unwrap())
        .unwrap();
    for e in [0.1, 0.4, 1.2] {
        certify(&pmf, e, pmf.horizon(), 1e-6);
    }
}

#[test]
fn pareto_decreasing_hazard_needs_remark_1() {
    let pmf = Discretizer::new()
        .max_horizon(600)
        .discretize(&Pareto::new(2.0, 10.0).unwrap())
        .unwrap();
    for e in [0.1, 0.3, 0.8] {
        // The LP is truncated at the stored horizon while the greedy also
        // sees the analytic tail; allow the truncation slack.
        certify(&pmf, e, 600, 2e-3);
    }
}

#[test]
fn hyperexponential_decreasing_hazard() {
    let pmf = Discretizer::new()
        .discretize(&HyperExponential::new(0.4, 0.5, 0.05).unwrap())
        .unwrap();
    for e in [0.2, 0.7] {
        certify(&pmf, e, pmf.horizon(), 2e-3);
    }
}

#[test]
fn non_monotone_hazard_mixture() {
    // A hand-built pmf whose hazard goes up, down, then up again.
    let pmf = SlotPmf::from_hazards(&[0.1, 0.6, 0.2, 0.05, 0.5, 0.9, 1.0]).unwrap();
    for e in [0.3, 0.8, 1.5] {
        certify(&pmf, e, 7, 1e-6);
    }
}

#[test]
fn uniform_arrival_window() {
    let pmf = Discretizer::new()
        .discretize(&UniformArrival::new(10.0, 30.0).unwrap())
        .unwrap();
    for e in [0.1, 0.5] {
        certify(&pmf, e, pmf.horizon(), 1e-6);
    }
}

#[test]
fn markov_chain_with_geometric_tail() {
    let pmf = MarkovEvents::new(0.6, 0.7).unwrap().to_slot_pmf().unwrap();
    // Tail-aware greedy vs an LP truncated far into the tail.
    certify(&pmf, 0.8, 400, 2e-3);
}

#[test]
fn optimal_capture_formula_of_theorem_1() {
    // For an IFR pmf the paper gives U = 1 − F(k+1) + c_{k+1} α_{k+1}: the
    // policy is a threshold with one fractional coefficient.
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(20.0, 3.0).unwrap())
        .unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    let policy = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.5), &consumption).unwrap();
    // Find the threshold k+1 (first positive coefficient).
    let k1 = (1..=pmf.horizon())
        .find(|&i| policy.coefficient(i) > 0.0)
        .expect("some activation");
    let u = pmf.survival(k1) + policy.coefficient(k1) * pmf.pmf(k1);
    assert!(
        (policy.ideal_qom() - u).abs() < 1e-9,
        "{} vs {}",
        policy.ideal_qom(),
        u
    );
}
