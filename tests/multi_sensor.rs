//! Integration tests of the multi-sensor coordination layer (Section V).

use evcap::core::{
    ActivationPolicy, EnergyBudget, GreedyPolicy, InfoModel, MultiSensorPlan, SlotAssignment,
};
use evcap::dist::{Discretizer, SlotPmf, Weibull};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy, RechargeProcess};
use evcap::sim::{EventSchedule, Simulation};

fn weibull() -> SlotPmf {
    Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).unwrap())
        .unwrap()
}

fn run_m_fi(pmf: &SlotPmf, n: usize, e: f64, slots: u64, seed: u64) -> evcap::sim::SimReport {
    let consumption = ConsumptionModel::paper_defaults();
    let plan = MultiSensorPlan::m_fi(pmf, EnergyBudget::per_slot(e), n, &consumption).unwrap();
    Simulation::builder(pmf)
        .slots(slots)
        .seed(seed)
        .sensors(n)
        .assignment(plan.assignment())
        .battery(Energy::from_units(1000.0))
        .run(plan.policy(), &mut |_| {
            Box::new(BernoulliRecharge::new(0.5, Energy::from_units(2.0 * e)).expect("valid"))
        })
        .expect("valid simulation")
}

#[test]
fn qom_scales_with_fleet_size() {
    let pmf = weibull();
    let mut last = 0.0;
    for n in [1usize, 2, 4, 8] {
        let qom = run_m_fi(&pmf, n, 0.1, 200_000, 31).qom();
        assert!(qom > last - 0.01, "N={n}: {qom} after {last}");
        last = qom;
    }
    assert!(
        last > 0.8,
        "8 sensors should get close to full capture: {last}"
    );
}

#[test]
fn only_the_owner_ever_activates() {
    let pmf = weibull();
    let consumption = ConsumptionModel::paper_defaults();
    let plan = MultiSensorPlan::m_fi(&pmf, EnergyBudget::per_slot(0.3), 3, &consumption).unwrap();
    let report = Simulation::builder(&pmf)
        .slots(5_000)
        .seed(37)
        .sensors(3)
        .assignment(plan.assignment())
        .battery(Energy::from_units(1000.0))
        .trace_slots(5_000)
        .run(plan.policy(), &mut |_| {
            Box::new(BernoulliRecharge::new(0.5, Energy::from_units(0.6)).expect("valid"))
        })
        .expect("valid simulation");
    for r in &report.trace {
        assert_eq!(r.owner, ((r.slot - 1) % 3) as usize, "slot {}", r.slot);
        if r.captured {
            assert!(r.event && r.active);
        }
    }
    // Captures attributed to the right sensors: totals agree.
    let per_sensor: u64 = report.sensors.iter().map(|s| s.captures).sum();
    assert_eq!(per_sensor, report.captures);
}

#[test]
fn full_information_state_resets_on_missed_events_too() {
    // Deterministic gaps of 5 and a policy that only activates in state 5:
    // under full information the state re-anchors at every event, captured
    // or not, so the sensor stays phase-locked and captures everything
    // (energy permitting).
    let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    let policy =
        GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(7.0 / 5.0), &consumption).unwrap();
    assert_eq!(policy.info_model(), InfoModel::Full);
    let report = Simulation::builder(&pmf)
        .slots(50_000)
        .seed(41)
        .battery(Energy::from_units(1000.0))
        .run(&policy, &mut |_| {
            Box::new(BernoulliRecharge::new(0.7, Energy::from_units(2.0)).expect("valid"))
        })
        .expect("valid simulation");
    assert!(report.qom() > 0.999, "{}", report.qom());
}

#[test]
fn block_assignment_rotates_by_blocks() {
    let pmf = weibull();
    let schedule = EventSchedule::generate(&pmf, 1_000, 43).unwrap();
    let policy = evcap::core::AggressivePolicy::new();
    let report = Simulation::builder(&pmf)
        .slots(1_000)
        .seed(43)
        .sensors(2)
        .assignment(SlotAssignment::Blocks { block_len: 10 })
        .battery(Energy::from_units(1000.0))
        .trace_slots(40)
        .run_on(&schedule, &policy, &mut |_| {
            Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("valid"))
        })
        .expect("valid simulation");
    for r in &report.trace {
        let expected = (((r.slot - 1) / 10) % 2) as usize;
        assert_eq!(r.owner, expected, "slot {}", r.slot);
    }
}

#[test]
fn coordinated_beats_duplicated_effort() {
    // Coordination avoids redundant activations: N sensors each following
    // the single-sensor policy independently on the same slots would
    // duplicate captures. We approximate "uncoordinated" by a single sensor
    // with N× the recharge (same total energy, no slot sharing): the
    // coordinated fleet should match it, confirming pooling works.
    let pmf = weibull();
    let coordinated = run_m_fi(&pmf, 4, 0.1, 300_000, 47).qom();
    let consumption = ConsumptionModel::paper_defaults();
    let pooled = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.4), &consumption).unwrap();
    let single = Simulation::builder(&pmf)
        .slots(300_000)
        .seed(47)
        .battery(Energy::from_units(1000.0))
        .run(&pooled, &mut |_| {
            Box::new(BernoulliRecharge::new(0.5, Energy::from_units(0.8)).expect("valid"))
        })
        .expect("valid simulation")
        .qom();
    assert!(
        (coordinated - single).abs() < 0.03,
        "coordinated {coordinated} vs pooled single {single}"
    );
}

#[test]
fn weighted_assignment_helps_heterogeneous_fleets() {
    // Two sensors, one harvesting 3× the other. Plain round-robin starves
    // the weak sensor (its half of the slots outruns its energy) while the
    // strong one banks unused energy; a 3:1 weighted rotation matches duty
    // to harvest and captures more.
    let pmf = weibull();
    let consumption = ConsumptionModel::paper_defaults();
    let rates = [0.3, 0.1];
    let aggregate = EnergyBudget::per_slot(rates.iter().sum());
    let policy = GreedyPolicy::optimize(&pmf, aggregate, &consumption).unwrap();
    let mut recharge = |s: usize| {
        Box::new(BernoulliRecharge::new(0.5, Energy::from_units(2.0 * rates[s])).expect("valid"))
            as Box<dyn RechargeProcess>
    };
    let run = |assignment: SlotAssignment,
               recharge: &mut dyn FnMut(usize) -> Box<dyn RechargeProcess>| {
        Simulation::builder(&pmf)
            .slots(400_000)
            .seed(59)
            .sensors(2)
            .assignment(assignment)
            .battery(Energy::from_units(400.0))
            .run(&policy, recharge)
            .unwrap()
    };
    let plain = run(SlotAssignment::RoundRobin, &mut recharge);
    let weighted = run(SlotAssignment::weighted(&[3, 1]).unwrap(), &mut recharge);
    assert!(
        weighted.qom() > plain.qom() + 0.02,
        "weighted {} vs round-robin {}",
        weighted.qom(),
        plain.qom()
    );
    // The weak sensor is forced idle far less under the weighted rotation.
    assert!(weighted.sensors[1].forced_idle < plain.sensors[1].forced_idle / 2);
}

#[test]
fn load_is_balanced_across_the_fleet() {
    let pmf = weibull();
    let report = run_m_fi(&pmf, 5, 0.1, 300_000, 53);
    assert!(report.load_balance() > 0.95, "{}", report.load_balance());
    // Energy use is also balanced.
    let consumed: Vec<f64> = report
        .sensors
        .iter()
        .map(|s| s.consumed.as_units())
        .collect();
    let max = consumed.iter().cloned().fold(0.0, f64::max);
    let min = consumed.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(min / max > 0.9, "consumed spread {min}..{max}");
}
