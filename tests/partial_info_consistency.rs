//! The censored belief propagation (our replacement for the paper's
//! Appendix B) must agree with *measured* conditional statistics from the
//! simulator: β̂_i computed analytically equals the empirical probability
//! that an event occurs i slots after a capture, conditioned on no capture
//! in between.

use evcap::core::{ActivationPolicy, ClusteringPolicy, DecisionContext};
use evcap::dist::{Discretizer, SlotPmf, Weibull};
use evcap::energy::{ConstantRecharge, Energy};
use evcap::renewal::AgeBeliefDp;
use evcap::sim::Simulation;

/// Measures empirical β̂_i from a traced simulation: among the times the
/// capture chain reached state i, how often did an event occur in that slot?
fn empirical_hazards(
    pmf: &SlotPmf,
    policy: &ClusteringPolicy,
    slots: u64,
    max_state: usize,
) -> Vec<(f64, u64)> {
    let report = Simulation::builder(pmf)
        .slots(slots)
        .seed(61)
        .battery(Energy::from_units(100_000.0))
        .initial_level(Energy::from_units(100_000.0))
        .trace_slots(slots as usize)
        .run(policy, &mut |_| {
            // Abundant energy: the energy assumption holds, matching the
            // analytic chain.
            Box::new(ConstantRecharge::new(Energy::from_units(10.0)).expect("valid"))
        })
        .expect("valid simulation");
    let mut hits = vec![0u64; max_state + 1];
    let mut visits = vec![0u64; max_state + 1];
    for r in &report.trace {
        if r.state <= max_state {
            visits[r.state] += 1;
            if r.event {
                hits[r.state] += 1;
            }
        }
    }
    (1..=max_state)
        .map(|i| {
            let v = visits[i];
            (
                if v == 0 {
                    f64::NAN
                } else {
                    hits[i] as f64 / v as f64
                },
                v,
            )
        })
        .collect()
}

#[test]
fn analytic_hazards_match_simulation() {
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(12.0, 3.0).unwrap())
        .unwrap();
    // A policy with real cooling regions so censoring actually happens.
    let policy = ClusteringPolicy::new(6, 12, 18, 1.0, 1.0, 1.0).unwrap();
    let max_state = 24;
    let mut dp = AgeBeliefDp::new(&pmf);
    let analytic: Vec<f64> = (1..=max_state)
        .map(|i| {
            dp.step(policy.probability(&DecisionContext::stationary(i)))
                .hazard
        })
        .collect();
    let empirical = empirical_hazards(&pmf, &policy, 400_000, max_state);
    for i in 1..=max_state {
        let (emp, visits) = empirical[i - 1];
        if visits < 2_000 {
            continue; // too rare for a tight estimate
        }
        let ana = analytic[i - 1];
        assert!(
            (emp - ana).abs() < 0.02,
            "state {i}: empirical {emp} (n={visits}) vs analytic {ana}"
        );
    }
}

#[test]
fn missed_mass_concentrates_in_cooling_regions() {
    // With full activation nothing is censored: the chain's survival after
    // the support is exhausted must be ~0, and every β̂ matches β.
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(12.0, 3.0).unwrap())
        .unwrap();
    let always = ClusteringPolicy::new(1, 1, 1, 1.0, 1.0, 1.0).unwrap();
    let mut dp = AgeBeliefDp::new(&pmf);
    for i in 1..=40 {
        let step = dp.step(always.probability(&DecisionContext::stationary(i)));
        assert!((step.hazard - pmf.hazard(i)).abs() < 1e-12, "state {i}");
    }
    assert!(dp.survival() < 1e-9, "{}", dp.survival());
}

#[test]
fn capture_chain_statistics_match_simulation() {
    // Expected capture cycle from the analytic chain vs the mean observed
    // inter-capture time.
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(12.0, 3.0).unwrap())
        .unwrap();
    let policy = ClusteringPolicy::new(6, 12, 18, 1.0, 1.0, 1.0).unwrap();
    let eval = policy.evaluate(
        &pmf,
        &evcap::energy::ConsumptionModel::paper_defaults(),
        evcap::core::EvalOptions::default(),
    );
    let report = Simulation::builder(&pmf)
        .slots(400_000)
        .seed(67)
        .battery(Energy::from_units(100_000.0))
        .initial_level(Energy::from_units(100_000.0))
        .run(&policy, &mut |_| {
            Box::new(ConstantRecharge::new(Energy::from_units(10.0)).expect("valid"))
        })
        .expect("valid simulation");
    let mean_cycle = report.slots as f64 / report.captures as f64;
    assert!(
        (mean_cycle - eval.expected_cycle).abs() / eval.expected_cycle < 0.03,
        "simulated cycle {mean_cycle} vs analytic {}",
        eval.expected_cycle
    );
    assert!(
        (report.qom() - eval.capture_probability).abs() < 0.02,
        "simulated {} vs analytic {}",
        report.qom(),
        eval.capture_probability
    );
}
