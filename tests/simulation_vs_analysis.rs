//! The simulator and the analytic evaluators must agree: with a large
//! battery (the energy assumption asymptotics of Section IV) the simulated
//! QoM converges to the analytic value, for both information models and
//! several event processes.

use evcap::core::{
    ActivationPolicy, ClusteringOptimizer, ClusteringPolicy, EnergyBudget, EvalOptions,
    GreedyPolicy,
};
use evcap::dist::{Discretizer, MarkovEvents, Pareto, SlotPmf, Weibull};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy};
use evcap::sim::Simulation;

const SLOTS: u64 = 600_000;
const BIG_K: f64 = 5_000.0;

fn simulate(pmf: &SlotPmf, policy: &dyn ActivationPolicy, e: f64, seed: u64) -> f64 {
    Simulation::builder(pmf)
        .slots(SLOTS)
        .seed(seed)
        .battery(Energy::from_units(BIG_K))
        .run(policy, &mut |_| {
            Box::new(BernoulliRecharge::new(0.5, Energy::from_units(2.0 * e)).expect("valid"))
        })
        .expect("valid simulation")
        .qom()
}

#[test]
fn greedy_achieves_ideal_qom_weibull() {
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).unwrap())
        .unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    for e in [0.2, 0.5, 1.0] {
        let policy = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption).unwrap();
        let qom = simulate(&pmf, &policy, e, 11);
        assert!(
            (qom - policy.ideal_qom()).abs() < 0.015,
            "e={e}: simulated {qom} vs ideal {}",
            policy.ideal_qom()
        );
    }
}

#[test]
fn greedy_achieves_ideal_qom_pareto() {
    let pmf = Discretizer::new()
        .max_horizon(2_000)
        .discretize(&Pareto::new(2.0, 10.0).unwrap())
        .unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    let policy = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.4), &consumption).unwrap();
    let qom = simulate(&pmf, &policy, 0.4, 13);
    assert!(
        (qom - policy.ideal_qom()).abs() < 0.02,
        "simulated {qom} vs ideal {}",
        policy.ideal_qom()
    );
}

#[test]
fn clustering_analytic_evaluation_matches_simulation() {
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).unwrap())
        .unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    // A hand-picked clustering policy (not optimized): the analytic chain
    // evaluation must still match what the simulator measures.
    let policy = ClusteringPolicy::new(25, 45, 70, 0.5, 1.0, 1.0).unwrap();
    let eval = policy.evaluate(&pmf, &consumption, EvalOptions::default());
    // Feed the sensor more than the policy needs so gating never binds.
    let qom = simulate(&pmf, &policy, eval.discharge_rate * 1.3, 17);
    assert!(
        (qom - eval.capture_probability).abs() < 0.015,
        "simulated {qom} vs analytic {}",
        eval.capture_probability
    );
}

#[test]
fn clustering_discharge_rate_matches_simulation() {
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).unwrap())
        .unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    let policy = ClusteringPolicy::new(25, 45, 70, 0.5, 1.0, 1.0).unwrap();
    let eval = policy.evaluate(&pmf, &consumption, EvalOptions::default());
    let report = Simulation::builder(&pmf)
        .slots(SLOTS)
        .seed(19)
        .battery(Energy::from_units(BIG_K))
        .run(&policy, &mut |_| {
            Box::new(BernoulliRecharge::new(0.5, Energy::from_units(4.0)).expect("valid"))
        })
        .expect("valid simulation");
    let simulated_rate = report.discharge_rate();
    assert!(
        (simulated_rate - eval.discharge_rate).abs() < 0.02,
        "simulated {simulated_rate} vs analytic {}",
        eval.discharge_rate
    );
}

#[test]
fn optimized_clustering_matches_analysis_on_markov_events() {
    let chain = MarkovEvents::new(0.3, 0.8).unwrap();
    let pmf = chain.to_slot_pmf().unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    let (policy, eval) = ClusteringOptimizer::new(EnergyBudget::per_slot(1.0))
        .optimize(&pmf, &consumption)
        .unwrap();
    let qom = simulate(&pmf, &policy, 1.3, 23);
    // Analytic value is a lower bound up to gating noise; simulation with
    // battery self-throttling in recovery can only do as well or better.
    assert!(
        qom > eval.capture_probability - 0.02,
        "simulated {qom} vs analytic {}",
        eval.capture_probability
    );
}

#[test]
fn memoryless_process_cannot_be_exploited() {
    // For geometric gaps the hazard is flat: every energy-balanced policy
    // achieves the same QoM. Greedy and clustering must agree with the
    // trivial bound U = e·μ/(δ1·μ... — computed via the LP objective.
    let p = 0.05;
    let pmf = SlotPmf::from_hazards(&[p]).unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    let e = 0.4;
    let greedy = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption).unwrap();
    let (_, cluster_eval) = ClusteringOptimizer::new(EnergyBudget::per_slot(e))
        .optimize(&pmf, &consumption)
        .unwrap();
    // Both exploit nothing: capture probability equals the affordable
    // activation fraction.
    assert!(
        (greedy.ideal_qom() - cluster_eval.capture_probability).abs() < 0.02,
        "greedy {} vs clustering {}",
        greedy.ideal_qom(),
        cluster_eval.capture_probability
    );
}
