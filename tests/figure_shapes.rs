//! Shape assertions for every reproduced figure, run at reduced scale.
//!
//! These encode what "the figure reproduced" means (DESIGN.md §6): the
//! orderings, convergences, and crossovers the paper reports — not absolute
//! values, which depend on the authors' unspecified simulator.

use evcap_bench::runners::{self, Fig5Panel};
use evcap_bench::Scale;

fn scale() -> Scale {
    Scale::quick()
}

#[test]
fn fig3a_converges_to_upper_bound_for_all_recharge_processes() {
    let fig = runners::fig3a(scale());
    let bound = fig.series("UpperBound").last_y().unwrap();
    for name in ["Bernoulli", "Periodic", "Uniform"] {
        let series = fig.series(name);
        let first = series.points.first().unwrap().1;
        let last = series.last_y().unwrap();
        // Rises with K…
        assert!(last > first, "{name}: {first} → {last}");
        // …to within a few percent of the analytic optimum, from below
        // (up to simulation noise).
        assert!(last > bound - 0.02, "{name}: {last} vs bound {bound}");
        assert!(last < bound + 0.02, "{name}: {last} vs bound {bound}");
    }
}

#[test]
fn fig3b_converges_to_clustering_bound() {
    let fig = runners::fig3b(scale());
    let bound = fig.series("UpperBound").last_y().unwrap();
    for name in ["Bernoulli", "Periodic", "Uniform"] {
        let last = fig.series(name).last_y().unwrap();
        assert!(
            (last - bound).abs() < 0.03,
            "{name}: {last} vs bound {bound}"
        );
    }
    // The partial-information bound is below the full-information one.
    let fi = runners::fig3a(scale());
    assert!(fig.series("UpperBound").last_y().unwrap() < fi.series("UpperBound").last_y().unwrap());
}

#[test]
fn fig4a_clustering_dominates_baselines() {
    let fig = runners::fig4a(scale());
    for (i, &x) in fig.xs().iter().enumerate() {
        let cl = fig.series("clustering").points[i].1;
        let ag = fig.series("aggressive").points[i].1;
        let pe = fig.series("periodic").points[i].1;
        assert!(cl > ag - 0.02, "c={x}: clustering {cl} vs aggressive {ag}");
        assert!(ag > pe - 0.02, "c={x}: aggressive {ag} vs periodic {pe}");
    }
    // All approach 1 as energy grows.
    assert!(fig.series("clustering").last_y().unwrap() > 0.95);
    assert!(fig.series("aggressive").last_y().unwrap() > 0.9);
}

#[test]
fn fig4b_pareto_keeps_the_ordering() {
    let fig = runners::fig4b(scale());
    for (i, &x) in fig.xs().iter().enumerate() {
        let cl = fig.series("clustering").points[i].1;
        let ag = fig.series("aggressive").points[i].1;
        let pe = fig.series("periodic").points[i].1;
        assert!(cl > ag - 0.02, "c={x}: clustering {cl} vs aggressive {ag}");
        assert!(ag > pe - 0.02, "c={x}: aggressive {ag} vs periodic {pe}");
    }
    assert!(fig.series("clustering").last_y().unwrap() > 0.95);
}

#[test]
fn fig5_clustering_wins_under_negative_correlation_matches_otherwise() {
    // Panel (a): b = 0.2 < 0.5 — EBCW's premise fails, π'_PI wins.
    let fig = runners::fig5(scale(), Fig5Panel::LowB);
    for (i, &a) in fig.xs().iter().enumerate() {
        let cl = fig.series("clustering").points[i].1;
        let eb = fig.series("EBCW").points[i].1;
        assert!(cl > eb - 0.015, "a={a}: clustering {cl} vs ebcw {eb}");
    }
    // Somewhere in the low-a range the win is strict.
    let cl0 = fig.series("clustering").points[0].1;
    let eb0 = fig.series("EBCW").points[0].1;
    assert!(cl0 > eb0 + 0.01, "clustering {cl0} vs ebcw {eb0}");

    // Panel (b): where a, b > 0.5 the two essentially coincide.
    let fig = runners::fig5(scale(), Fig5Panel::HighB);
    for (i, &a) in fig.xs().iter().enumerate() {
        if a > 0.5 {
            let cl = fig.series("clustering").points[i].1;
            let eb = fig.series("EBCW").points[i].1;
            assert!(
                (cl - eb).abs() < 0.04,
                "a={a}: clustering {cl} vs ebcw {eb}"
            );
        }
    }
}

#[test]
fn fig6a_coordination_beats_baselines_and_saturates() {
    let fig = runners::fig6a(scale());
    for (i, &n) in fig.xs().iter().enumerate() {
        let fi = fig.series("M-FI").points[i].1;
        let pi = fig.series("M-PI").points[i].1;
        let ag = fig.series("aggressive").points[i].1;
        let pe = fig.series("periodic").points[i].1;
        assert!(fi > pi - 0.02, "N={n}: M-FI {fi} vs M-PI {pi}");
        assert!(pi > ag - 0.02, "N={n}: M-PI {pi} vs aggressive {ag}");
        assert!(ag > pe - 0.02, "N={n}: aggressive {ag} vs periodic {pe}");
    }
    // M-PI approaches M-FI as N grows (the paper's observation).
    let gap_small = fig.series("M-FI").points[0].1 - fig.series("M-PI").points[0].1;
    let gap_large = fig.series("M-FI").last_y().unwrap() - fig.series("M-PI").last_y().unwrap();
    assert!(gap_large < gap_small, "{gap_large} vs {gap_small}");
    // M-FI saturates near 1 well before the largest fleet.
    assert!(fig.series("M-FI").last_y().unwrap() > 0.98);
}

#[test]
fn fig6b_energy_sweep_keeps_ordering() {
    let fig = runners::fig6b(scale());
    for (i, &c) in fig.xs().iter().enumerate() {
        let fi = fig.series("M-FI").points[i].1;
        let pi = fig.series("M-PI").points[i].1;
        let ag = fig.series("aggressive").points[i].1;
        assert!(fi > pi - 0.02, "c={c}");
        assert!(pi > ag - 0.02, "c={c}");
    }
    let gap_small = fig.series("M-FI").points[0].1 - fig.series("M-PI").points[0].1;
    let gap_large = fig.series("M-FI").last_y().unwrap() - fig.series("M-PI").last_y().unwrap();
    assert!(gap_large < gap_small);
}

#[test]
fn ablation_regions_shows_each_region_matters() {
    let fig = runners::ablation_clustering_regions(scale());
    let mean = |name: &str| {
        let s = fig.series(name);
        s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64
    };
    // Without recovery the schedule eventually drifts off phase and stops
    // capturing; *when* that happens is a random tail event, so assert on
    // the sweep average rather than per point.
    assert!(
        mean("full") > mean("no-recovery") + 0.2,
        "full {} vs no-recovery {}",
        mean("full"),
        mean("no-recovery")
    );
    for (i, &c) in fig.xs().iter().enumerate() {
        let full = fig.series("full").points[i].1;
        let no_recovery = fig.series("no-recovery").points[i].1;
        let no_cooling = fig.series("no-cooling").points[i].1;
        assert!(full > no_recovery - 0.02, "c={c}: {full} vs {no_recovery}");
        // Without cooling, energy is wasted before the hot region.
        assert!(full > no_cooling - 0.02, "c={c}: {full} vs {no_cooling}");
    }
}

#[test]
fn ablation_load_balance_is_tight_for_weibull() {
    let fig = runners::ablation_load_balance(scale());
    for (i, &n) in fig.xs().iter().enumerate() {
        let balance = fig.series("min/max").points[i].1;
        assert!(balance > 0.9, "N={n}: balance {balance}");
    }
}

#[test]
fn objective_frontier_trades_capture_for_freshness() {
    let (capture, age) = runners::objective_frontier(scale());
    assert_eq!(capture.xs(), age.xs());
    // At every budget the QoM-optimal policy captures at least as much
    // (up to simulation noise) — that is what it optimizes…
    for (i, &e) in capture.xs().iter().enumerate() {
        let qom = capture.series("qom-optimal").points[i].1;
        let aoi = capture.series("aoi-optimal").points[i].1;
        assert!(
            qom >= aoi - 0.02,
            "e={e}: qom-optimal {qom} vs aoi-optimal {aoi}"
        );
    }
    // …and at least one budget buys measurably fresher information: the
    // two objectives genuinely pick different policies. The starkest form
    // is an infinite qom-optimal age (the capture objective abandons a
    // slow PoI entirely) against a finite aoi-optimal one.
    let fresher = age
        .xs()
        .iter()
        .enumerate()
        .filter(|&(i, _)| {
            let qom = age.series("qom-optimal").points[i].1;
            let aoi = age.series("aoi-optimal").points[i].1;
            aoi.is_finite() && (qom.is_infinite() || aoi < qom * 0.97)
        })
        .count();
    assert!(fresher >= 1, "age panel never separates:\n{age}");
}
