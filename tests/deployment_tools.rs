//! Integration tests of the deployment-facing tooling that extends the
//! paper: battery provisioning, online adaptation, and fleet allocation —
//! each validated end-to-end against the simulator.

use evcap::core::{EnergyBudget, FleetAllocator, GreedyPolicy, MultiSensorPlan, PoiSpec};
use evcap::dist::{Discretizer, Weibull};
use evcap::energy::{BernoulliRecharge, ConsumptionModel, Energy, RechargeProcess};
use evcap::sim::{
    recommend_capacity, replicate, run_adaptive_greedy, AdaptiveConfig, Simulation, SizingOptions,
};

fn weibull(scale: f64) -> evcap::dist::SlotPmf {
    Discretizer::new()
        .discretize(&Weibull::new(scale, 3.0).unwrap())
        .unwrap()
}

fn bernoulli(e: f64) -> impl Fn(usize) -> Box<dyn RechargeProcess> + Sync {
    move |_| Box::new(BernoulliRecharge::new(0.5, Energy::from_units(2.0 * e)).unwrap())
}

#[test]
fn provisioned_battery_meets_target_in_fresh_simulations() {
    let pmf = weibull(40.0);
    let consumption = ConsumptionModel::paper_defaults();
    let e = 0.5;
    let policy = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption).unwrap();
    let target = 0.75;
    let rec = recommend_capacity(
        &pmf,
        &policy,
        &bernoulli(e),
        target,
        SizingOptions {
            slots: 120_000,
            replications: 3,
            resolution: 2.0,
            ..SizingOptions::default()
        },
    )
    .unwrap();
    // Validate on seeds the sizing search never saw.
    let fresh = replicate(777, 6, |seed| {
        Simulation::builder(&pmf)
            .slots(120_000)
            .seed(seed)
            .battery(rec.capacity)
            .run(&policy, &mut bernoulli(e))
            .unwrap()
            .qom()
    });
    assert!(
        fresh.mean > target - 0.02,
        "fresh-seed QoM {} below target {target} at K = {}",
        fresh.mean,
        rec.capacity
    );
}

#[test]
fn adaptation_closes_most_of_the_oracle_gap() {
    let pmf = weibull(40.0);
    let consumption = ConsumptionModel::paper_defaults();
    let e = 0.5;
    let report = run_adaptive_greedy(
        &pmf,
        EnergyBudget::per_slot(e),
        &consumption,
        &mut bernoulli(e),
        AdaptiveConfig {
            episodes: 4,
            episode_slots: 60_000,
            ..AdaptiveConfig::default()
        },
    )
    .unwrap();
    let oracle = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption)
        .unwrap()
        .ideal_qom();
    let gap_start = oracle - report.initial_qom();
    let gap_end = oracle - report.final_qom();
    assert!(
        gap_start > 0.15,
        "bootstrap should trail the oracle: {gap_start}"
    );
    assert!(
        gap_end < 0.3 * gap_start,
        "adaptation closed too little: {gap_end} of {gap_start}"
    );
}

#[test]
fn fleet_plan_survives_simulation() {
    // Allocate across two unequal PoIs, then verify the simulated weighted
    // QoM tracks the plan and beats the reversed (deliberately bad) split.
    let consumption = ConsumptionModel::paper_defaults();
    let per_sensor = EnergyBudget::per_slot(0.12);
    let pois = [
        PoiSpec {
            pmf: weibull(25.0),
            weight: 2.0,
        },
        PoiSpec {
            pmf: weibull(55.0),
            weight: 0.5,
        },
    ];
    let allocator = FleetAllocator::new(per_sensor, consumption);
    let plan = allocator.allocate(&pois, 6).unwrap();
    assert!(
        plan.allocation[0] > plan.allocation[1],
        "{:?}",
        plan.allocation
    );

    let simulate_split = |split: &[usize]| -> f64 {
        let mut total = 0.0;
        for (i, poi) in pois.iter().enumerate() {
            if split[i] == 0 {
                continue;
            }
            let mfi = MultiSensorPlan::m_fi(&poi.pmf, per_sensor, split[i], &consumption).unwrap();
            let qom = Simulation::builder(&poi.pmf)
                .slots(250_000)
                .seed(91 + i as u64)
                .sensors(split[i])
                .assignment(mfi.assignment())
                .battery(Energy::from_units(1000.0))
                .run(mfi.policy(), &mut bernoulli(0.12))
                .unwrap()
                .qom();
            total += poi.weight * qom;
        }
        total
    };
    let planned = simulate_split(&plan.allocation);
    assert!(
        (planned - plan.weighted_qom).abs() < 0.1,
        "simulated {planned} vs planned {}",
        plan.weighted_qom
    );
    let reversed: Vec<usize> = plan.allocation.iter().rev().copied().collect();
    let bad = simulate_split(&reversed);
    assert!(planned > bad + 0.05, "planned {planned} vs reversed {bad}");
}
